package tau

import (
	"fmt"
	"io"
	"sort"

	"ktau/internal/ktau"
)

// Phase-based profiling and call-path profiles: two of the paper's §6
// future-work items ("phase-based profiling", "better support for merged
// user-kernel call-graph profiles"). A phase partitions execution — an
// application iteration, a solver stage — and every routine's exclusive
// time is attributed both to its flat profile entry and to the innermost
// active phase's per-routine table. Call-path mode additionally records
// parent⇒child edge events, TAU-style.

// PhaseProfile is one phase's sub-profile.
type PhaseProfile struct {
	Name  string
	Calls uint64
	Incl  int64 // cycles spent inside the phase
	// Routines maps routine name -> exclusive cycles attributed while this
	// phase was innermost-active.
	Routines map[string]int64
}

type phaseFrame struct {
	idx   int
	start int64
}

// StartPhase enters a named phase. Phases may nest; attribution goes to the
// innermost active phase.
func (p *Profiler) StartPhase(name string) {
	if !p.opts.Enabled {
		return
	}
	i, ok := p.phaseIdx[name]
	if !ok {
		i = len(p.phases)
		p.phases = append(p.phases, &PhaseProfile{Name: name, Routines: map[string]int64{}})
		if p.phaseIdx == nil {
			p.phaseIdx = map[string]int{}
		}
		p.phaseIdx[name] = i
	}
	p.phases[i].Calls++
	p.phaseStack = append(p.phaseStack, phaseFrame{idx: i, start: p.u.Cycles()})
	p.u.Charge(p.opts.OverheadPerOp)
}

// StopPhase leaves the innermost phase, which must match name.
func (p *Profiler) StopPhase(name string) {
	if !p.opts.Enabled {
		return
	}
	n := len(p.phaseStack)
	if n == 0 {
		panic("tau: StopPhase(" + name + ") with no active phase")
	}
	f := p.phaseStack[n-1]
	ph := p.phases[f.idx]
	if ph.Name != name {
		panic("tau: StopPhase(" + name + ") does not match StartPhase(" + ph.Name + ")")
	}
	p.phaseStack = p.phaseStack[:n-1]
	ph.Incl += p.u.Cycles() - f.start
	p.u.Charge(p.opts.OverheadPerOp)
}

// TimedPhase runs fn inside StartPhase/StopPhase.
func (p *Profiler) TimedPhase(name string, fn func()) {
	p.StartPhase(name)
	fn()
	p.StopPhase(name)
}

// attributeToPhase credits a routine's exclusive cycles to the innermost
// active phase (called from Stop).
func (p *Profiler) attributeToPhase(routine string, excl int64) {
	if n := len(p.phaseStack); n > 0 {
		p.phases[p.phaseStack[n-1].idx].Routines[routine] += excl
	}
}

// Phases exports the phase sub-profiles in first-start order.
func (p *Profiler) Phases() []PhaseProfile {
	out := make([]PhaseProfile, 0, len(p.phases))
	for _, ph := range p.phases {
		cp := PhaseProfile{Name: ph.Name, Calls: ph.Calls, Incl: ph.Incl,
			Routines: map[string]int64{}}
		for k, v := range ph.Routines {
			cp.Routines[k] = v
		}
		out = append(out, cp)
	}
	return out
}

// RenderMergedTree writes the merged user/kernel call tree: each user
// routine (by descending merged exclusive time) with the kernel events that
// KTAU's event mapping attributes inside it as indented children — the
// "merged user-kernel call-graph profile" of the paper's future work.
func RenderMergedTree(w io.Writer, merged MergedProfile, kern ktau.Snapshot, hz int64) {
	toMS := func(cyc int64) float64 {
		if hz <= 0 {
			return 0
		}
		return float64(cyc) / float64(hz) * 1e3
	}
	kids := map[string][]ktau.MappedSnap{}
	for _, ms := range kern.Mapped {
		kids[ms.CtxName] = append(kids[ms.CtxName], ms)
	}
	fmt.Fprintf(w, "merged user/kernel call tree for %s (rank %d)\n", merged.Task, merged.Rank)
	for _, e := range merged.Entries {
		if e.Kernel {
			continue
		}
		fmt.Fprintf(w, "%-32s calls=%-8d excl=%10.3fms (user-only view: %.3fms)\n",
			e.Name, e.Calls, toMS(e.Excl), toMS(e.UserOnlyExcl))
		children := append([]ktau.MappedSnap(nil), kids[e.Name]...)
		sort.Slice(children, func(i, j int) bool { return children[i].Excl > children[j].Excl })
		for _, c := range children {
			fmt.Fprintf(w, "    => %-25s calls=%-8d excl=%10.3fms [%s]\n",
				c.EvName, c.Calls, toMS(c.Excl), c.Group)
		}
	}
}
