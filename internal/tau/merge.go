package tau

import (
	"sort"

	"ktau/internal/ktau"
)

// MergedEntry is one row of an integrated user/kernel profile (Fig. 2-D):
// user routines with their exclusive time corrected down by the kernel time
// that occurred inside them, plus kernel routines as additional entries.
type MergedEntry struct {
	Name   string
	Kernel bool
	Group  ktau.Group // zero for user routines
	Calls  uint64
	// Excl is the merged exclusive time in cycles: for user routines the
	// "true" exclusive time of the combined user/kernel call stack; for
	// kernel routines their kernel exclusive time.
	Excl int64
	// UserOnlyExcl is the routine's exclusive time as the standard
	// user-level-only TAU view reports it (0 for kernel entries).
	UserOnlyExcl int64
	// KernelWithin is the kernel time attributed inside the routine via
	// KTAU's event mapping (0 for kernel entries).
	KernelWithin int64
}

// MergedProfile is the integrated view of one process.
type MergedProfile struct {
	Task    string
	Rank    int
	Entries []MergedEntry
}

// Merge combines a user-level TAU profile with the same process's KTAU
// kernel snapshot. Kernel time is subtracted from the user routines it
// occurred in (using the mapped data when available), and kernel events are
// spliced in as first-class entries — reproducing the paper's integrated
// user/kernel profile.
func Merge(user Profile, kern ktau.Snapshot) MergedProfile {
	out := MergedProfile{Task: user.Task, Rank: user.Rank}

	// Kernel time attributed per user context.
	kernInCtx := make(map[string]int64)
	for _, ms := range kern.Mapped {
		kernInCtx[ms.CtxName] += ms.Excl
	}

	for _, e := range user.Events {
		kin := kernInCtx[e.Name]
		excl := e.Excl - kin
		if excl < 0 {
			excl = 0
		}
		out.Entries = append(out.Entries, MergedEntry{
			Name:         e.Name,
			Calls:        e.Calls,
			Excl:         excl,
			UserOnlyExcl: e.Excl,
			KernelWithin: kin,
		})
	}
	for _, e := range kern.Events {
		out.Entries = append(out.Entries, MergedEntry{
			Name:   e.Name,
			Kernel: true,
			Group:  e.Group,
			Calls:  e.Calls,
			Excl:   e.Excl,
		})
	}
	sort.SliceStable(out.Entries, func(i, j int) bool {
		return out.Entries[i].Excl > out.Entries[j].Excl
	})
	return out
}

// Find returns the entry with the given name and kind, or nil.
func (mp MergedProfile) Find(name string, kernelSide bool) *MergedEntry {
	for i := range mp.Entries {
		if mp.Entries[i].Name == name && mp.Entries[i].Kernel == kernelSide {
			return &mp.Entries[i]
		}
	}
	return nil
}

// TotalExcl sums merged exclusive cycles (user plus kernel): an estimate of
// the process's total active time.
func (mp MergedProfile) TotalExcl() int64 {
	var t int64
	for _, e := range mp.Entries {
		t += e.Excl
	}
	return t
}
