package tau

import (
	"testing"
	"time"

	"ktau/internal/kernel"
	"ktau/internal/ktau"
	"ktau/internal/sim"
)

func tauRig(t *testing.T) (*sim.Engine, *kernel.Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	p := kernel.DefaultParams()
	p.NumCPUs = 1
	p.CostJitter = 0
	p.PageFaultRate = 0
	k := kernel.NewKernel(eng, "n0", p, sim.NewRNG(1), ktau.Options{
		Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
		Mapping: true, RetainExited: true,
	})
	t.Cleanup(k.Shutdown)
	return eng, k
}

func runTask(t *testing.T, eng *sim.Engine, task *kernel.Task) {
	t.Helper()
	deadline := eng.Now().Add(time.Minute)
	for !task.Exited() && eng.Now() < deadline {
		if !eng.Step() {
			t.Fatal("engine dry")
		}
	}
	if !task.Exited() {
		t.Fatal("task did not finish")
	}
}

func TestProfilerBasics(t *testing.T) {
	eng, k := tauRig(t)
	var prof Profile
	task := k.Spawn("app", func(u *kernel.UCtx) {
		p := New(u, DefaultOptions())
		p.Timed("main()", func() {
			p.Timed("rhs", func() { u.Compute(10 * time.Millisecond) })
			p.Timed("rhs", func() { u.Compute(10 * time.Millisecond) })
			p.Timed("blts", func() { u.Compute(5 * time.Millisecond) })
		})
		prof = p.Snapshot("app", 0)
	}, kernel.SpawnOpts{})
	runTask(t, eng, task)

	rhs := prof.Find("rhs")
	blts := prof.Find("blts")
	main := prof.Find("main()")
	if rhs == nil || blts == nil || main == nil {
		t.Fatal("missing routines")
	}
	if rhs.Calls != 2 || blts.Calls != 1 || main.Calls != 1 {
		t.Errorf("calls: rhs=%d blts=%d main=%d", rhs.Calls, blts.Calls, main.Calls)
	}
	if main.Subrs != 3 {
		t.Errorf("main subrs = %d, want 3", main.Subrs)
	}
	k0 := k
	if got := k0.DurationOf(rhs.Incl); got < 20*time.Millisecond || got > 22*time.Millisecond {
		t.Errorf("rhs inclusive = %v, want ~20ms", got)
	}
	// main exclusive is tiny: everything happened in children.
	if k0.DurationOf(main.Excl) > time.Millisecond {
		t.Errorf("main exclusive = %v, want ~0", k0.DurationOf(main.Excl))
	}
	// Profile sorted by descending exclusive time.
	if prof.Events[0].Name != "rhs" {
		t.Errorf("profile not sorted by excl: first = %s", prof.Events[0].Name)
	}
}

func TestDisabledProfilerRecordsNothing(t *testing.T) {
	eng, k := tauRig(t)
	var prof Profile
	task := k.Spawn("app", func(u *kernel.UCtx) {
		p := New(u, Options{Enabled: false})
		p.Timed("rhs", func() { u.Compute(time.Millisecond) })
		prof = p.Snapshot("app", 0)
	}, kernel.SpawnOpts{})
	runTask(t, eng, task)
	if len(prof.Events) != 0 {
		t.Errorf("disabled profiler recorded %d events", len(prof.Events))
	}
}

func TestMismatchedStopPanics(t *testing.T) {
	eng, k := tauRig(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic to propagate from task")
		}
	}()
	task := k.Spawn("bad", func(u *kernel.UCtx) {
		p := New(u, DefaultOptions())
		p.Start("a")
		p.Stop("b")
	}, kernel.SpawnOpts{})
	runTask(t, eng, task)
}

func TestKtauContextFollowsRoutineStack(t *testing.T) {
	eng, k := tauRig(t)
	var ctxInA, ctxInB, ctxAfter int32
	task := k.Spawn("app", func(u *kernel.UCtx) {
		p := New(u, DefaultOptions())
		p.Start("a")
		ctxInA = u.KtauCtx()
		p.Start("b")
		ctxInB = u.KtauCtx()
		p.Stop("b")
		if u.KtauCtx() != ctxInA {
			t.Error("context not restored to parent routine after Stop")
		}
		p.Stop("a")
		ctxAfter = u.KtauCtx()
	}, kernel.SpawnOpts{})
	runTask(t, eng, task)
	if ctxInA == 0 || ctxInB == 0 || ctxInA == ctxInB {
		t.Errorf("contexts not distinct: a=%d b=%d", ctxInA, ctxInB)
	}
	if ctxAfter != 0 {
		t.Errorf("context after outermost Stop = %d, want 0", ctxAfter)
	}
	if k.Ktau().CtxName(ctxInA) != "a" || k.Ktau().CtxName(ctxInB) != "b" {
		t.Error("context names not registered")
	}
}

func TestUserTraceRecords(t *testing.T) {
	eng, k := tauRig(t)
	var recs []Record
	task := k.Spawn("app", func(u *kernel.UCtx) {
		p := New(u, Options{Enabled: true, TraceCapacity: 4})
		for i := 0; i < 4; i++ { // 8 records through a 4-slot ring
			p.Timed("f", func() { u.Compute(time.Millisecond) })
		}
		recs = p.Trace()
	}, kernel.SpawnOpts{})
	runTask(t, eng, task)
	if len(recs) != 4 {
		t.Fatalf("trace len = %d, want capacity 4", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].TSC < recs[i-1].TSC {
			t.Error("user trace not monotone")
		}
	}
}

func TestMergeCorrectsExclusiveTime(t *testing.T) {
	eng, k := tauRig(t)
	var prof Profile
	task := k.Spawn("app", func(u *kernel.UCtx) {
		p := New(u, DefaultOptions())
		p.Start("MPI_Recv()")
		// Kernel work happens inside the routine: a syscall with kernel CPU.
		u.Syscall("sys_read", func(kc *kernel.KCtx) {
			kc.Use(20 * time.Millisecond)
		})
		p.Stop("MPI_Recv()")
		p.Timed("compute", func() { u.Compute(30 * time.Millisecond) })
		prof = p.Snapshot("app", 0)
	}, kernel.SpawnOpts{})
	runTask(t, eng, task)

	kern := k.Ktau().SnapshotTask(task.KD())
	merged := Merge(prof, kern)

	mr := merged.Find("MPI_Recv()", false)
	if mr == nil {
		t.Fatal("merged profile missing MPI_Recv")
	}
	// TAU-only exclusive covers the 20ms of kernel time; the merged view
	// must subtract it.
	if k.DurationOf(mr.UserOnlyExcl) < 20*time.Millisecond {
		t.Errorf("user-only excl = %v, want >= 20ms", k.DurationOf(mr.UserOnlyExcl))
	}
	if k.DurationOf(mr.Excl) > 2*time.Millisecond {
		t.Errorf("merged excl = %v, want ~0 (all time was kernel)", k.DurationOf(mr.Excl))
	}
	if k.DurationOf(mr.KernelWithin) < 19*time.Millisecond {
		t.Errorf("kernel-within = %v, want ~20ms", k.DurationOf(mr.KernelWithin))
	}
	// Kernel events are spliced in as first-class entries.
	if merged.Find("sys_read", true) == nil {
		t.Error("merged profile missing kernel sys_read entry")
	}
	// The compute routine has no kernel time (modulo ticks); its merged
	// exclusive stays close to the user view.
	comp := merged.Find("compute", false)
	ratio := float64(comp.Excl) / float64(comp.UserOnlyExcl)
	if ratio < 0.95 {
		t.Errorf("compute merged/user ratio = %.3f, want ~1", ratio)
	}
}

func TestMergedProfileSortedAndTotals(t *testing.T) {
	user := Profile{Events: []EventData{
		{Name: "a", Calls: 1, Incl: 100, Excl: 100},
		{Name: "b", Calls: 1, Incl: 900, Excl: 900},
	}}
	kern := ktau.Snapshot{
		Events: []ktau.EventSnap{
			{Name: "schedule", Group: ktau.GroupSched, Calls: 2, Incl: 500, Excl: 500},
		},
		Mapped: []ktau.MappedSnap{
			{CtxName: "b", EvName: "schedule", Calls: 2, Excl: 400},
		},
	}
	m := Merge(user, kern)
	if m.Entries[0].Name != "b" && m.Entries[0].Name != "schedule" {
		t.Errorf("merged not sorted by excl: %+v", m.Entries)
	}
	b := m.Find("b", false)
	if b.Excl != 500 { // 900 - 400 mapped kernel
		t.Errorf("b merged excl = %d, want 500", b.Excl)
	}
	if got := m.TotalExcl(); got != 100+500+500 {
		t.Errorf("total = %d, want 1100", got)
	}
	// Mapped kernel time larger than user time clamps at zero.
	kern.Mapped[0].Excl = 5000
	m2 := Merge(user, kern)
	if m2.Find("b", false).Excl != 0 {
		t.Error("over-attributed kernel time must clamp user excl at 0")
	}
}
