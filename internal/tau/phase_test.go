package tau

import (
	"strings"
	"testing"
	"time"

	"ktau/internal/kernel"
)

func TestPhaseProfilingAttributesRoutines(t *testing.T) {
	eng, k := tauRig(t)
	var phases []PhaseProfile
	task := k.Spawn("app", func(u *kernel.UCtx) {
		p := New(u, DefaultOptions())
		for it := 0; it < 3; it++ {
			name := "iteration"
			if it == 2 {
				name = "final"
			}
			p.TimedPhase(name, func() {
				p.Timed("rhs", func() { u.Compute(4 * time.Millisecond) })
				p.Timed("solve", func() { u.Compute(2 * time.Millisecond) })
			})
		}
		phases = p.Phases()
	}, kernel.SpawnOpts{})
	runTask(t, eng, task)

	if len(phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(phases))
	}
	iter := phases[0]
	if iter.Name != "iteration" || iter.Calls != 2 {
		t.Errorf("phase[0] = %+v", iter)
	}
	// Two iterations of ~6ms each.
	if got := k.DurationOf(iter.Incl); got < 12*time.Millisecond || got > 14*time.Millisecond {
		t.Errorf("iteration phase incl = %v, want ~12ms", got)
	}
	// Routine attribution within the phase: rhs ~8ms, solve ~4ms.
	rhs := k.DurationOf(iter.Routines["rhs"])
	solve := k.DurationOf(iter.Routines["solve"])
	if rhs < 7*time.Millisecond || rhs > 9*time.Millisecond {
		t.Errorf("rhs within iteration = %v, want ~8ms", rhs)
	}
	if solve < 3*time.Millisecond || solve > 5*time.Millisecond {
		t.Errorf("solve within iteration = %v, want ~4ms", solve)
	}
	final := phases[1]
	if final.Calls != 1 || k.DurationOf(final.Routines["rhs"]) < 3*time.Millisecond {
		t.Errorf("final phase wrong: %+v", final)
	}
}

func TestPhaseMismatchPanics(t *testing.T) {
	eng, k := tauRig(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	task := k.Spawn("bad", func(u *kernel.UCtx) {
		p := New(u, DefaultOptions())
		p.StartPhase("a")
		p.StopPhase("b")
	}, kernel.SpawnOpts{})
	runTask(t, eng, task)
}

func TestDisabledProfilerSkipsPhases(t *testing.T) {
	eng, k := tauRig(t)
	var phases []PhaseProfile
	task := k.Spawn("app", func(u *kernel.UCtx) {
		p := New(u, Options{Enabled: false})
		p.TimedPhase("x", func() { u.Compute(time.Millisecond) })
		phases = p.Phases()
	}, kernel.SpawnOpts{})
	runTask(t, eng, task)
	if len(phases) != 0 {
		t.Error("disabled profiler recorded phases")
	}
}

func TestCallPathEdges(t *testing.T) {
	eng, k := tauRig(t)
	var prof Profile
	task := k.Spawn("app", func(u *kernel.UCtx) {
		opts := DefaultOptions()
		opts.CallPaths = true
		p := New(u, opts)
		p.Timed("main()", func() {
			p.Timed("rhs", func() { u.Compute(3 * time.Millisecond) })
			p.Timed("rhs", func() { u.Compute(3 * time.Millisecond) })
			p.Timed("solve", func() {
				p.Timed("rhs", func() { u.Compute(time.Millisecond) })
			})
		})
		prof = p.Snapshot("app", 0)
	}, kernel.SpawnOpts{})
	runTask(t, eng, task)

	mainRhs := prof.Find("main() => rhs")
	solveRhs := prof.Find("solve => rhs")
	mainSolve := prof.Find("main() => solve")
	if mainRhs == nil || solveRhs == nil || mainSolve == nil {
		t.Fatalf("missing call-path edges: %v %v %v", mainRhs, solveRhs, mainSolve)
	}
	if mainRhs.Calls != 2 || solveRhs.Calls != 1 {
		t.Errorf("edge calls: main=>rhs %d (want 2), solve=>rhs %d (want 1)",
			mainRhs.Calls, solveRhs.Calls)
	}
	// The same callee via different paths must be distinguished.
	if k.DurationOf(mainRhs.Incl) < 5*time.Millisecond {
		t.Errorf("main=>rhs incl = %v, want ~6ms", k.DurationOf(mainRhs.Incl))
	}
	if k.DurationOf(solveRhs.Incl) > 2*time.Millisecond {
		t.Errorf("solve=>rhs incl = %v, want ~1ms", k.DurationOf(solveRhs.Incl))
	}
	// Flat event still present alongside edges.
	if flat := prof.Find("rhs"); flat == nil || flat.Calls != 3 {
		t.Errorf("flat rhs = %+v, want 3 calls", flat)
	}
}

func TestRenderMergedTree(t *testing.T) {
	eng, k := tauRig(t)
	var prof Profile
	task := k.Spawn("app", func(u *kernel.UCtx) {
		p := New(u, DefaultOptions())
		p.Timed("MPI_Recv()", func() {
			u.Syscall("sys_read", func(kc *kernel.KCtx) { kc.Use(5 * time.Millisecond) })
		})
		prof = p.Snapshot("app", 0)
	}, kernel.SpawnOpts{})
	runTask(t, eng, task)

	kern := k.Ktau().SnapshotTask(task.KD())
	merged := Merge(prof, kern)
	var sb strings.Builder
	RenderMergedTree(&sb, merged, kern, k.Params().HZ)
	out := sb.String()
	if !strings.Contains(out, "MPI_Recv()") {
		t.Error("tree missing user routine")
	}
	if !strings.Contains(out, "=> sys_read") {
		t.Errorf("tree missing mapped kernel child:\n%s", out)
	}
}
