// Package ktrace merges user-level (TAU) and kernel-level (KTAU) event logs
// on their shared virtual-TSC timebase into one timeline — the data behind
// the paper's Fig. 2-E, where Vampir displays kernel activity (sys_writev,
// sock_sendmsg, tcp_sendmsg, do_softirq, tcp receive routines) nested inside
// a user-space MPI_Send region.
package ktrace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ktau/internal/ktau"
	"ktau/internal/tau"
)

// Event is one record of the merged timeline.
type Event struct {
	TSC    int64
	Name   string
	Kernel bool
	Kind   ktau.RecordKind
	Val    int64 // atomic value, when Kind == KindAtomic
}

// Merge combines a user trace and a kernel trace into one chronologically
// ordered timeline. nameOf resolves kernel event IDs (use the measurement
// registry's Name method).
func Merge(user []tau.Record, kern []ktau.Record, nameOf func(ktau.EventID) string) []Event {
	out := make([]Event, 0, len(user)+len(kern))
	for _, r := range user {
		kind := ktau.KindExit
		if r.Entry {
			kind = ktau.KindEntry
		}
		out = append(out, Event{TSC: r.TSC, Name: r.Name, Kind: kind})
	}
	for _, r := range kern {
		out = append(out, Event{
			TSC: r.TSC, Name: nameOf(r.Ev), Kernel: true, Kind: r.Kind, Val: r.Val,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TSC < out[j].TSC })
	return out
}

// Window returns the sub-timeline between the outermost entry and exit of
// the named user routine (occurrence occ, 0-based), inclusive. It returns
// nil if the routine does not appear that many times.
func Window(tl []Event, routine string, occ int) []Event {
	depth := 0
	start := -1
	seen := 0
	for i, e := range tl {
		if e.Kernel || e.Name != routine {
			continue
		}
		switch e.Kind {
		case ktau.KindEntry:
			if depth == 0 {
				if seen == occ {
					start = i
				}
			}
			depth++
		case ktau.KindExit:
			depth--
			if depth == 0 {
				if start >= 0 {
					return tl[start : i+1]
				}
				seen++
			}
		}
	}
	return nil
}

// Render writes a Vampir-like indented text timeline. Times are shown in
// microseconds relative to the first event; kernel events are tagged [K].
func Render(w io.Writer, tl []Event, hz int64) {
	if len(tl) == 0 {
		fmt.Fprintln(w, "(empty timeline)")
		return
	}
	base := tl[0].TSC
	toUS := func(c int64) float64 {
		if hz <= 0 {
			return 0
		}
		return float64(c-base) / float64(hz) * 1e6
	}
	depth := 0
	for _, e := range tl {
		tag := "   "
		if e.Kernel {
			tag = "[K]"
		}
		switch e.Kind {
		case ktau.KindEntry:
			fmt.Fprintf(w, "%12.1fus %s %s> %s\n", toUS(e.TSC), tag, strings.Repeat("  ", depth), e.Name)
			depth++
		case ktau.KindExit:
			if depth > 0 {
				depth--
			}
			fmt.Fprintf(w, "%12.1fus %s %s< %s\n", toUS(e.TSC), tag, strings.Repeat("  ", depth), e.Name)
		case ktau.KindAtomic:
			fmt.Fprintf(w, "%12.1fus %s %s* %s = %d\n", toUS(e.TSC), tag, strings.Repeat("  ", depth), e.Name, e.Val)
		}
	}
}

// Names returns the distinct event names appearing in the timeline, in
// first-appearance order.
func Names(tl []Event) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range tl {
		if !seen[e.Name] {
			seen[e.Name] = true
			out = append(out, e.Name)
		}
	}
	return out
}
