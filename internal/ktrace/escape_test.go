package ktrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ktau/internal/ktau"
)

// TestChromeTraceEscapesNames pins the JSON robustness of the Chrome trace
// export: event names containing quotes, backslashes and control characters
// must survive a marshal/unmarshal round trip, and the emitted document must
// parse as valid JSON.
func TestChromeTraceEscapesNames(t *testing.T) {
	hostile := []string{
		`do_IRQ["timer"]`,
		`C:\kernel\path`,
		"tab\there",
		`quote"back\slash"mix`,
		"newline\nname",
	}
	tl := make([]Event, 0, 2*len(hostile))
	for i, name := range hostile {
		tsc := int64(1000 * (i + 1))
		tl = append(tl,
			Event{TSC: tsc, Name: name, Kernel: i%2 == 0, Kind: ktau.KindEntry},
			Event{TSC: tsc + 500, Name: name, Kernel: i%2 == 0, Kind: ktau.KindExit},
		)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tl, 450_000_000, 42); err != nil {
		t.Fatal(err)
	}
	var parsed []struct {
		Name  string `json:"name"`
		Phase string `json:"ph"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed) != len(tl) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(tl))
	}
	for i, e := range parsed {
		if e.Name != tl[i].Name {
			t.Errorf("event %d name mangled: got %q want %q", i, e.Name, tl[i].Name)
		}
	}
	// Raw quotes inside a name must never appear unescaped in the stream:
	// the substring `["timer"]` can only occur un-escaped if escaping broke.
	if strings.Contains(buf.String(), `["timer"]`) {
		t.Error("unescaped quoted name leaked into the JSON stream")
	}
}
