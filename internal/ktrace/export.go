package ktrace

import (
	"encoding/json"
	"fmt"
	"io"

	"ktau/internal/ktau"
)

// Chrome trace-event export: the modern equivalent of handing the merged
// user/kernel trace to Vampir or Jumpshot (paper §2, Fig 2-E). The output
// loads directly in chrome://tracing or Perfetto: user events on one track,
// kernel events on another, nested by duration.

// chromeEvent is one entry of the Chrome trace-event JSON array format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	PID   int            `json:"pid"` // process (simulated pid)
	TID   int            `json:"tid"` // track: 1 user, 2 kernel
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders a merged timeline as a Chrome trace-event JSON
// array. Timestamps are converted from cycles at the given clock; pid labels
// the simulated process.
func WriteChromeTrace(w io.Writer, tl []Event, hz int64, pid int) error {
	if hz <= 0 {
		return fmt.Errorf("ktrace: non-positive clock %d", hz)
	}
	var base int64
	if len(tl) > 0 {
		base = tl[0].TSC
	}
	toUS := func(c int64) float64 { return float64(c-base) / float64(hz) * 1e6 }

	events := make([]chromeEvent, 0, len(tl))
	for _, e := range tl {
		cat, tid := "user", 1
		if e.Kernel {
			cat, tid = "kernel", 2
		}
		ev := chromeEvent{Name: e.Name, Cat: cat, TS: toUS(e.TSC), PID: pid, TID: tid}
		switch e.Kind {
		case ktau.KindEntry:
			ev.Phase = "B"
		case ktau.KindExit:
			ev.Phase = "E"
		case ktau.KindAtomic:
			ev.Phase = "i"
			ev.Args = map[string]any{"value": e.Val}
		default:
			continue
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
