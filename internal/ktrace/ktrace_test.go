package ktrace

import (
	"encoding/json"
	"strings"
	"testing"

	"ktau/internal/ktau"
	"ktau/internal/tau"
)

func nameOf(id ktau.EventID) string {
	return map[ktau.EventID]string{1: "sys_writev", 2: "tcp_sendmsg"}[id]
}

func sampleTimeline() []Event {
	user := []tau.Record{
		{TSC: 100, Name: "MPI_Send()", Entry: true},
		{TSC: 900, Name: "MPI_Send()", Entry: false},
		{TSC: 1000, Name: "MPI_Send()", Entry: true},
		{TSC: 1900, Name: "MPI_Send()", Entry: false},
	}
	kern := []ktau.Record{
		{TSC: 200, Ev: 1, Kind: ktau.KindEntry},
		{TSC: 300, Ev: 2, Kind: ktau.KindEntry},
		{TSC: 600, Ev: 2, Kind: ktau.KindExit},
		{TSC: 700, Ev: 1, Kind: ktau.KindExit},
		{TSC: 1200, Ev: 1, Kind: ktau.KindEntry},
		{TSC: 1300, Ev: 1, Kind: ktau.KindExit},
	}
	return Merge(user, kern, nameOf)
}

func TestMergeChronological(t *testing.T) {
	tl := sampleTimeline()
	if len(tl) != 10 {
		t.Fatalf("len = %d", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].TSC < tl[i-1].TSC {
			t.Fatal("timeline not sorted")
		}
	}
	if !tl[1].Kernel || tl[0].Kernel {
		t.Error("kernel tagging wrong")
	}
	if tl[1].Name != "sys_writev" {
		t.Errorf("kernel name = %q", tl[1].Name)
	}
}

func TestWindowSelectsOccurrence(t *testing.T) {
	tl := sampleTimeline()
	w0 := Window(tl, "MPI_Send()", 0)
	if len(w0) != 6 || w0[0].TSC != 100 || w0[len(w0)-1].TSC != 900 {
		t.Errorf("window 0 wrong: %+v", w0)
	}
	w1 := Window(tl, "MPI_Send()", 1)
	if len(w1) != 4 || w1[0].TSC != 1000 {
		t.Errorf("window 1 wrong: %+v", w1)
	}
	if Window(tl, "MPI_Send()", 5) != nil {
		t.Error("missing occurrence must be nil")
	}
	if Window(tl, "nope", 0) != nil {
		t.Error("unknown routine must be nil")
	}
}

func TestWindowHandlesNesting(t *testing.T) {
	user := []tau.Record{
		{TSC: 10, Name: "f", Entry: true},
		{TSC: 20, Name: "f", Entry: true}, // recursive
		{TSC: 30, Name: "f", Entry: false},
		{TSC: 40, Name: "f", Entry: false},
	}
	tl := Merge(user, nil, nameOf)
	w := Window(tl, "f", 0)
	if len(w) != 4 {
		t.Errorf("recursive window should span outermost pair, got %d events", len(w))
	}
}

func TestRenderIndentation(t *testing.T) {
	var sb strings.Builder
	Render(&sb, sampleTimeline(), 450_000_000)
	out := sb.String()
	if !strings.Contains(out, "[K]") {
		t.Error("no kernel tag")
	}
	if !strings.Contains(out, "> MPI_Send()") || !strings.Contains(out, "< MPI_Send()") {
		t.Error("entry/exit markers missing")
	}
	// tcp_sendmsg nests two levels under MPI_Send: two indent units before
	// its entry marker.
	if !strings.Contains(out, "    > tcp_sendmsg") {
		t.Errorf("nesting indentation missing:\n%s", out)
	}
	var empty strings.Builder
	Render(&empty, nil, 450_000_000)
	if !strings.Contains(empty.String(), "empty") {
		t.Error("empty timeline not reported")
	}
}

func TestRenderAtomic(t *testing.T) {
	tl := Merge(nil, []ktau.Record{{TSC: 5, Ev: 2, Kind: ktau.KindAtomic, Val: 1448}}, nameOf)
	var sb strings.Builder
	Render(&sb, tl, 450_000_000)
	if !strings.Contains(sb.String(), "* tcp_sendmsg = 1448") {
		t.Errorf("atomic rendering wrong:\n%s", sb.String())
	}
}

func TestNames(t *testing.T) {
	names := Names(sampleTimeline())
	want := []string{"MPI_Send()", "sys_writev", "tcp_sendmsg"}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tl := sampleTimeline()
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, tl, 450_000_000, 42); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != len(tl) {
		t.Fatalf("events = %d, want %d", len(events), len(tl))
	}
	// Begin/end pairing and track separation.
	var begins, ends int
	for _, e := range events {
		switch e["ph"] {
		case "B":
			begins++
		case "E":
			ends++
		}
		if e["cat"] == "kernel" && e["tid"].(float64) != 2 {
			t.Error("kernel events must be on tid 2")
		}
		if e["pid"].(float64) != 42 {
			t.Error("pid not propagated")
		}
	}
	if begins != ends || begins != 5 {
		t.Errorf("begin/end = %d/%d, want 5/5", begins, ends)
	}
	// Timestamps start at zero and ascend.
	if events[0]["ts"].(float64) != 0 {
		t.Errorf("first ts = %v", events[0]["ts"])
	}
	if err := WriteChromeTrace(&sb, tl, 0, 1); err == nil {
		t.Error("zero clock must error")
	}
}

func TestChromeTraceAtomicInstant(t *testing.T) {
	tl := Merge(nil, []ktau.Record{{TSC: 5, Ev: 2, Kind: ktau.KindAtomic, Val: 1448}}, nameOf)
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, tl, 450_000_000, 1); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatal(err)
	}
	if events[0]["ph"] != "i" {
		t.Errorf("atomic phase = %v, want i", events[0]["ph"])
	}
	args := events[0]["args"].(map[string]any)
	if args["value"].(float64) != 1448 {
		t.Errorf("atomic value = %v", args["value"])
	}
}

func TestOpDurationsFromTrace(t *testing.T) {
	recs := []ktau.Record{
		{TSC: 10, Ev: 1, Kind: ktau.KindEntry},
		{TSC: 20, Ev: 2, Kind: ktau.KindEntry},
		{TSC: 50, Ev: 2, Kind: ktau.KindExit}, // 30
		{TSC: 90, Ev: 1, Kind: ktau.KindExit}, // 80
		{TSC: 100, Ev: 2, Kind: ktau.KindEntry},
		{TSC: 110, Ev: 2, Kind: ktau.KindExit}, // 10
		{TSC: 200, Ev: 2, Kind: ktau.KindExit}, // orphan: entry lost
	}
	durs := OpDurations(recs, nameOf)
	if got := durs["sys_writev"]; len(got) != 1 || got[0] != 80 {
		t.Errorf("sys_writev durations = %v", got)
	}
	if got := durs["tcp_sendmsg"]; len(got) != 2 || got[0] != 30 || got[1] != 10 {
		t.Errorf("tcp_sendmsg durations = %v", got)
	}
	stats := SummariseDurations(durs)
	if stats[0].Name != "tcp_sendmsg" || stats[0].Count != 2 {
		t.Errorf("summary order wrong: %+v", stats[0])
	}
	if stats[0].Min != 10 || stats[0].Max != 30 || stats[0].Mean != 20 {
		t.Errorf("tcp stats wrong: %+v", stats[0])
	}
}

func TestOpDurationsNestedRecursion(t *testing.T) {
	recs := []ktau.Record{
		{TSC: 0, Ev: 1, Kind: ktau.KindEntry},
		{TSC: 5, Ev: 1, Kind: ktau.KindEntry}, // recursive
		{TSC: 8, Ev: 1, Kind: ktau.KindExit},  // inner: 3
		{TSC: 20, Ev: 1, Kind: ktau.KindExit}, // outer: 20
	}
	durs := OpDurations(recs, nameOf)["sys_writev"]
	if len(durs) != 2 || durs[0] != 3 || durs[1] != 20 {
		t.Errorf("recursive durations = %v", durs)
	}
}
