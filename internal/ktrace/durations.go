package ktrace

import (
	"sort"

	"ktau/internal/ktau"
)

// Per-operation duration extraction: where the profile stores only sums,
// the trace ring preserves each activation's boundaries, so true per-call
// distributions (the exact data behind the paper's Fig. 10 CDF of "a single
// kernel-level TCP operation") can be recovered from traced runs.

// OpDurations reconstructs per-activation durations (in cycles) from a
// kernel trace, keyed by event name. Nested activations are matched through
// a per-event stack; unmatched exits (ring overwrote the entry) are
// discarded.
func OpDurations(recs []ktau.Record, nameOf func(ktau.EventID) string) map[string][]int64 {
	stacks := map[ktau.EventID][]int64{}
	out := map[string][]int64{}
	for _, r := range recs {
		switch r.Kind {
		case ktau.KindEntry:
			stacks[r.Ev] = append(stacks[r.Ev], r.TSC)
		case ktau.KindExit:
			st := stacks[r.Ev]
			if len(st) == 0 {
				continue // entry lost to ring overwrite
			}
			start := st[len(st)-1]
			stacks[r.Ev] = st[:len(st)-1]
			name := nameOf(r.Ev)
			out[name] = append(out[name], r.TSC-start)
		}
	}
	return out
}

// DurationStats summarises one event's per-activation durations.
type DurationStats struct {
	Name   string
	Count  int
	Min    int64
	Median int64
	P90    int64
	Max    int64
	Mean   float64
}

// SummariseDurations computes per-event order statistics from OpDurations
// output, sorted by descending count.
func SummariseDurations(durs map[string][]int64) []DurationStats {
	out := make([]DurationStats, 0, len(durs))
	for name, ds := range durs {
		if len(ds) == 0 {
			continue
		}
		s := append([]int64(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		var sum int64
		for _, v := range s {
			sum += v
		}
		out = append(out, DurationStats{
			Name:   name,
			Count:  len(s),
			Min:    s[0],
			Median: s[len(s)/2],
			P90:    s[len(s)*9/10],
			Max:    s[len(s)-1],
			Mean:   float64(sum) / float64(len(s)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}
