package perfmon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ktau/internal/promfmt"
)

// WritePrometheus renders the store's cumulative state in the Prometheus
// text exposition format: per (node, event) counters for calls and
// inclusive/exclusive cycles, plus pipeline meta-series. Label values are
// escaped exactly as the format defines (\\, \" and \n and nothing else —
// promfmt.EscapeLabel; Go's %q would emit \t and \xNN escapes real scrapers
// reject). Output is fully deterministic (nodes in first-seen order, events
// sorted by name).
func (st *Store) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	esc := promfmt.EscapeLabel
	fmt.Fprintln(bw, "# HELP ktau_kernel_event_calls_total Kernel event activations observed by perfmon.")
	fmt.Fprintln(bw, "# TYPE ktau_kernel_event_calls_total counter")
	for _, node := range st.NodeNames() {
		for _, t := range st.Totals(node) {
			fmt.Fprintf(bw, "ktau_kernel_event_calls_total{node=%s,event=%s,group=%s} %d\n",
				esc(node), esc(t.Name), esc(t.Group.String()), t.Calls)
		}
	}
	fmt.Fprintln(bw, "# HELP ktau_kernel_event_cycles_total Kernel event cycles observed by perfmon.")
	fmt.Fprintln(bw, "# TYPE ktau_kernel_event_cycles_total counter")
	for _, node := range st.NodeNames() {
		for _, t := range st.Totals(node) {
			fmt.Fprintf(bw, "ktau_kernel_event_cycles_total{node=%s,event=%s,group=%s,kind=\"incl\"} %d\n",
				esc(node), esc(t.Name), esc(t.Group.String()), t.Incl)
			fmt.Fprintf(bw, "ktau_kernel_event_cycles_total{node=%s,event=%s,group=%s,kind=\"excl\"} %d\n",
				esc(node), esc(t.Name), esc(t.Group.String()), t.Excl)
		}
	}
	fmt.Fprintln(bw, "# HELP ktau_perfmon_rounds_total Collection rounds ingested per node.")
	fmt.Fprintln(bw, "# TYPE ktau_perfmon_rounds_total counter")
	for _, info := range st.Nodes() {
		fmt.Fprintf(bw, "ktau_perfmon_rounds_total{node=%s} %d\n", esc(info.Name), info.Rounds)
	}
	fmt.Fprintln(bw, "# HELP ktau_perfmon_wire_bytes_total Collection payload bytes shipped per node.")
	fmt.Fprintln(bw, "# TYPE ktau_perfmon_wire_bytes_total counter")
	for _, info := range st.Nodes() {
		fmt.Fprintf(bw, "ktau_perfmon_wire_bytes_total{node=%s} %d\n", esc(info.Name), info.Bytes)
	}
	fmt.Fprintln(bw, "# HELP ktau_perfmon_frames_total Frames ingested by the collector.")
	fmt.Fprintln(bw, "# TYPE ktau_perfmon_frames_total counter")
	fmt.Fprintf(bw, "ktau_perfmon_frames_total %d\n", st.Frames())
	fmt.Fprintln(bw, "# HELP ktau_perfmon_dropped_frames_total Frames received but discarded (undecodable, corrupt or desynced).")
	fmt.Fprintln(bw, "# TYPE ktau_perfmon_dropped_frames_total counter")
	fmt.Fprintf(bw, "ktau_perfmon_dropped_frames_total %d\n", st.Drops())
	fmt.Fprintln(bw, "# HELP ktau_perfmon_missed_rounds_total Collection rounds whose frames never arrived, per node.")
	fmt.Fprintln(bw, "# TYPE ktau_perfmon_missed_rounds_total counter")
	for _, info := range st.Nodes() {
		fmt.Fprintf(bw, "ktau_perfmon_missed_rounds_total{node=%s} %d\n", esc(info.Name), info.Missed)
	}
	fmt.Fprintln(bw, "# HELP ktau_perfmon_gap_rounds_total Rounds the agent reported unreadable, per node.")
	fmt.Fprintln(bw, "# TYPE ktau_perfmon_gap_rounds_total counter")
	for _, info := range st.Nodes() {
		fmt.Fprintf(bw, "ktau_perfmon_gap_rounds_total{node=%s} %d\n", esc(info.Name), info.Gaps)
	}
	return bw.Flush()
}

// jsonSample is the JSON-lines record shape (fixed field order via struct).
type jsonSample struct {
	Node   string `json:"node"`
	Round  int    `json:"round"`
	Event  string `json:"event"`
	Group  string `json:"group"`
	DCalls uint64 `json:"dcalls"`
	DIncl  int64  `json:"dincl"`
	DExcl  int64  `json:"dexcl"`
}

// WriteJSONLines renders the retained time-series as one JSON object per
// line: a (node, round, event) activity delta per record, events sorted by
// name within a node, samples in chronological order. window limits the
// slice (0 = everything retained).
func (st *Store) WriteJSONLines(w io.Writer, window int) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, node := range st.NodeNames() {
		for _, t := range st.Totals(node) { // sorted by event name
			for _, smp := range st.Series(node, t.Name, window) {
				rec := jsonSample{
					Node: node, Round: smp.Round, Event: t.Name,
					Group: t.Group.String(), DCalls: smp.DCalls,
					DIncl: smp.DIncl, DExcl: smp.DExcl,
				}
				if err := enc.Encode(rec); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WriteClusterView renders the live human view: per-node collection state
// and noise assessment, the cluster's hottest kernel routines, and — when a
// noise report flags nodes — the per-rank interference attribution, in the
// spirit of libktau's ASCII renderers.
func (st *Store) WriteClusterView(w io.Writer, rep NoiseReport, topK int) {
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	fmt.Fprintf(bw, "== perfmon cluster view: %d nodes, %d frames ==\n", len(st.NodeNames()), st.Frames())
	fmt.Fprintf(bw, "%-8s %4s %7s %10s %9s %9s %9s  %s\n",
		"node", "cpus", "rounds", "wire(B)", "irq(kc)", "bh(kc)", "noise", "status")
	byName := map[string]NodeNoise{}
	for _, nn := range rep.Nodes {
		byName[nn.Node] = nn
	}
	for _, info := range st.Nodes() {
		nn := byName[info.Name]
		status := "ok"
		if nn.Flagged {
			status = "NOISY"
		}
		if info.Down {
			status = "DOWN"
		}
		if info.Missed > 0 || info.Gaps > 0 {
			status += fmt.Sprintf(" (missed %d, gaps %d)", info.Missed, info.Gaps)
		}
		fmt.Fprintf(bw, "%-8s %4d %7d %10d %9d %9d %8.3f%%  %s\n",
			info.Name, info.CPUs, info.Rounds, info.Bytes,
			nn.IRQ/1000, nn.BH/1000, nn.Share*100, status)
	}
	fmt.Fprintf(bw, "cluster median noise share %.3f%%, flag threshold %.3f%%\n",
		rep.MedianShare*100, rep.Threshold*100)

	if topK > 0 {
		fmt.Fprintf(bw, "-- top %d kernel routines cluster-wide (window excl cycles) --\n", topK)
		for i, h := range st.TopK(topK, rep.Window) {
			fmt.Fprintf(bw, "%2d. %-24s %-9s calls=%-8d excl=%d\n",
				i+1, h.Name, h.Group.String(), h.Calls, h.Excl)
		}
	}

	for _, nn := range rep.Nodes {
		if !nn.Flagged {
			continue
		}
		fmt.Fprintf(bw, "-- %s: noise attribution --\n", nn.Node)
		for i, d := range nn.TopDaemons {
			if i >= 3 {
				break
			}
			fmt.Fprintf(bw, "   daemon %-14s pid=%-6d cycles=%d\n", d.Name, d.PID, d.Cycles)
		}
		for i, r := range nn.Ranks {
			if i >= 4 {
				break
			}
			fmt.Fprintf(bw, "   rank   %-14s pid=%-6d interference=%d sched=%d\n",
				r.Name, r.PID, r.Interference, r.Sched)
		}
	}
}
