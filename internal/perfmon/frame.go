package perfmon

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ktau/internal/ktau"
)

// Wire protocol constants. Every collection round an agent ships one frame:
// a fixed preamble (magic, version, payload length — what the sink reads
// first to learn how much more to receive) followed by the delta payload.
const (
	// FrameMagic identifies a perfmon frame ("KMON").
	FrameMagic = 0x4b4d4f4e
	// FrameVersion is the wire format version (2 added the Gap flag).
	FrameVersion = 2
	// FrameHeaderBytes is the fixed on-wire preamble preceding each frame's
	// payload: magic(4) + version(4) + payload length(4) + reserved(4).
	FrameHeaderBytes = 16
)

// TimerTickEvent is the kernel's periodic timer interrupt event. Its calls
// are a uniform sampling clock over CPU occupancy: whichever context a tick
// lands in was occupying that CPU, so per-process tick counts estimate CPU
// time without trusting cycle sums (which, per KTAU semantics, include
// switched-out time for blocking events like schedule_vol).
const TimerTickEvent = "do_IRQ[timer]"

// ProcDelta is one process's window summary: the compact per-process record
// shipped alongside the kernel-wide delta so detectors can attribute noise
// to specific daemons and interference to specific ranks.
type ProcDelta struct {
	PID  int
	Name string
	// DTotal is the window's exclusive-cycle delta summed over all the
	// process's kernel events. Cycle sums include blocked time for
	// scheduling events, so this is an upper bound on active kernel work.
	DTotal int64
	// Per-group window deltas for the groups the detectors consume.
	DIRQ   int64
	DBH    int64
	DSched int64
	DTCP   int64
	// DTicks counts TimerTickEvent activations in the process's context this
	// window — the occupancy sampling clock the noise detector uses.
	DTicks uint64
}

// Frame is one collection round's shipment from a monitored node: the node's
// kernel-wide profile delta (round N vs N−1) plus per-process summaries.
type Frame struct {
	Node    string
	NodeIdx int
	Round   int
	CPUs    int
	// FromTSC/ToTSC bound the window on the node's clock (FromTSC is 0 on
	// the first round: the window covers everything since boot).
	FromTSC int64
	ToTSC   int64
	// Last marks the agent's final round; the sink exits after ingesting it.
	Last bool
	// Gap marks a round whose data could not be read (persistent procfs
	// failure): the frame carries no deltas and an empty window (FromTSC ==
	// ToTSC), and the agent's delta baseline is left untouched so the next
	// successful round's deltas cover the gap.
	Gap bool
	// Kernel is the kernel-wide profile delta for the window.
	Kernel []ktau.EventDelta
	// Procs summarises every process that had kernel activity in the window.
	Procs []ProcDelta
}

// frameWriter appends wire-format primitives to a caller-supplied buffer.
type frameWriter struct{ b []byte }

func (w *frameWriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *frameWriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *frameWriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *frameWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *frameWriter) bit(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *frameWriter) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	w.b = binary.LittleEndian.AppendUint16(w.b, uint16(len(s)))
	w.b = append(w.b, s...)
}

// EncodeFrame serialises a frame payload (the bytes following the on-wire
// preamble; FrameHeaderBytes models the preamble itself).
func EncodeFrame(f Frame) []byte { return AppendFrame(nil, f) }

// AppendFrame serialises a frame payload, appending to dst and returning the
// extended buffer. Callers on a hot path reuse dst's capacity across rounds;
// the result aliases dst, so retainers (queues, sinks) must copy it out.
func AppendFrame(dst []byte, f Frame) []byte {
	w := frameWriter{b: dst}
	w.u32(FrameMagic)
	w.u32(FrameVersion)
	w.str(f.Node)
	w.u32(uint32(f.NodeIdx))
	w.u32(uint32(f.Round))
	w.u32(uint32(f.CPUs))
	w.i64(f.FromTSC)
	w.i64(f.ToTSC)
	w.bit(f.Last)
	w.bit(f.Gap)
	w.u32(uint32(len(f.Kernel)))
	for _, e := range f.Kernel {
		w.str(e.Name)
		w.u32(uint32(e.Group))
		w.bit(e.Absolute)
		w.u64(e.DCalls)
		w.i64(e.DIncl)
		w.i64(e.DExcl)
	}
	w.u32(uint32(len(f.Procs)))
	for _, p := range f.Procs {
		w.i64(int64(p.PID))
		w.str(p.Name)
		w.i64(p.DTotal)
		w.i64(p.DIRQ)
		w.i64(p.DBH)
		w.i64(p.DSched)
		w.i64(p.DTCP)
		w.u64(p.DTicks)
	}
	return w.b
}

// DecodeFrame parses a frame payload produced by EncodeFrame.
func DecodeFrame(blob []byte) (Frame, error) {
	r := frameReader{b: blob}
	var f Frame
	if r.u32() != FrameMagic {
		return f, errors.New("perfmon: bad frame magic")
	}
	if v := r.u32(); v != FrameVersion {
		return f, fmt.Errorf("perfmon: unsupported frame version %d", v)
	}
	f.Node = r.str()
	f.NodeIdx = int(r.u32())
	f.Round = int(r.u32())
	f.CPUs = int(r.u32())
	f.FromTSC = r.i64()
	f.ToTSC = r.i64()
	f.Last = r.u8() == 1
	f.Gap = r.u8() == 1
	nev := int(r.u32())
	for i := 0; i < nev && r.err == nil; i++ {
		var e ktau.EventDelta
		e.Name = r.str()
		e.Group = ktau.Group(r.u32())
		e.Absolute = r.u8() == 1
		e.DCalls = r.u64()
		e.DIncl = r.i64()
		e.DExcl = r.i64()
		f.Kernel = append(f.Kernel, e)
	}
	np := int(r.u32())
	for i := 0; i < np && r.err == nil; i++ {
		var p ProcDelta
		p.PID = int(r.i64())
		p.Name = r.str()
		p.DTotal = r.i64()
		p.DIRQ = r.i64()
		p.DBH = r.i64()
		p.DSched = r.i64()
		p.DTCP = r.i64()
		p.DTicks = r.u64()
		f.Procs = append(f.Procs, p)
	}
	return f, r.err
}

type frameReader struct {
	b   []byte
	off int
	err error
}

func (r *frameReader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.b) {
		r.err = errors.New("perfmon: truncated frame")
		return false
	}
	return true
}

func (r *frameReader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *frameReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *frameReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *frameReader) i64() int64 { return int64(r.u64()) }

func (r *frameReader) str() string {
	if !r.need(2) {
		return ""
	}
	n := int(binary.LittleEndian.Uint16(r.b[r.off:]))
	r.off += 2
	if !r.need(n) {
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}
