package perfmon

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ktau/internal/cluster"
	"ktau/internal/kernel"
	"ktau/internal/ktau"
	"ktau/internal/netsim"
	"ktau/internal/procfs"
	"ktau/internal/sim"
	"ktau/internal/tcpsim"
)

// bootFaultCluster boots a small monitored cluster with a deliberately tiny
// TCP send window, so a broken agent→collector link backs up (and the send
// times out) within a couple of collection rounds instead of tens.
func bootFaultCluster(t *testing.T, nodes int, seed uint64, rounds int) (*cluster.Cluster, *PerfMon) {
	t.Helper()
	// The window must stay above the delayed-ack threshold (2×MTU = 3000
	// bytes) or every healthy flow deadlocks waiting for an ack that is never
	// owed; 4 KiB is the smallest round figure above it.
	tcp := tcpsim.DefaultParams()
	tcp.SndBuf = 4 * 1024
	c := cluster.New(cluster.Config{
		Nodes: cluster.UniformNodes("node", nodes),
		Ktau: ktau.Options{Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			Mapping: true, RetainExited: true},
		TCP:  tcp,
		Seed: seed,
	})
	for i, n := range c.Nodes {
		n.K.Spawn(fmt.Sprintf("app.rank%d", i), func(u *kernel.UCtx) {
			for {
				u.Compute(2 * time.Millisecond)
				u.Sleep(1 * time.Millisecond)
			}
		}, kernel.SpawnOpts{})
	}
	pm, err := Deploy(c, Config{
		Interval:   20 * time.Millisecond,
		Rounds:     rounds,
		RankPrefix: "app.rank",
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, pm
}

// drain drives the pipeline to completion, re-querying Tasks because
// failover spawns replacement sinks mid-run.
func drain(t *testing.T, c *cluster.Cluster, pm *PerfMon) {
	t.Helper()
	for i := 0; i < 5; i++ {
		done := c.RunUntilDone(pm.Tasks(), time.Minute)
		// The task list may have grown while the engine ran (failover spawns
		// replacement sinks), so completion only counts on a fresh list.
		settled := true
		for _, task := range pm.Tasks() {
			if !task.Exited() && !task.Kernel().Crashed() {
				settled = false
			}
		}
		if done && settled {
			return
		}
	}
	for _, task := range pm.Tasks() {
		if !task.Exited() && !task.Kernel().Crashed() {
			t.Fatalf("pipeline task %s (pid %d) never finished", task.Name(), task.PID())
		}
	}
}

// runCollectorCrash boots the cluster, kills the collector node mid-run and
// drains the pipeline, returning the final store.
func runCollectorCrash(t *testing.T, seed uint64) (*PerfMon, *Store) {
	t.Helper()
	c, pm := bootFaultCluster(t, 4, seed, 25)
	t.Cleanup(c.Shutdown)
	crashAt := c.Now().Add(150 * time.Millisecond)
	c.Node(0).Eng.At(crashAt, func() { c.Node(0).K.Crash() })
	drain(t, c, pm)
	return pm, pm.Store()
}

func TestCollectorCrashFailsOver(t *testing.T) {
	pm, st := runCollectorCrash(t, 7)

	if pm.Failovers() != 1 {
		t.Fatalf("Failovers = %d, want 1", pm.Failovers())
	}
	if pm.Collector() != 1 {
		t.Fatalf("Collector after failover = %d, want 1", pm.Collector())
	}
	if !st.Down("node0") {
		t.Fatal("dead collector node0 not marked down")
	}

	// The store lives on the PerfMon, not the dead node: every sample
	// ingested before the crash must still be there.
	var pre NodeInfo
	for _, info := range st.Nodes() {
		if info.Name == "node0" {
			pre = info
		}
	}
	if pre.Rounds == 0 {
		t.Fatal("store lost node0's pre-crash samples")
	}
	if len(st.Totals("node0")) == 0 {
		t.Fatal("store lost node0's cumulative totals")
	}

	// Surviving nodes keep reporting to the new collector; the rounds lost
	// in the dead collector's never-acked streams are marked as missed, not
	// silently absorbed.
	var missed, survivors int
	for _, info := range st.Nodes() {
		if info.Name == "node0" {
			continue
		}
		missed += info.Missed
		if info.Rounds > pre.Rounds {
			survivors++
		}
	}
	if missed == 0 {
		t.Fatal("no missed rounds recorded despite frames lost in the failover")
	}
	if survivors != 3 {
		t.Fatalf("%d surviving nodes out-collected the dead one, want 3", survivors)
	}
}

func TestCollectorCrashDeterministic(t *testing.T) {
	var outs []string
	for i := 0; i < 2; i++ {
		_, st := runCollectorCrash(t, 11)
		var prom, jsonl bytes.Buffer
		if err := st.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if err := st.WriteJSONLines(&jsonl, 0); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, prom.String()+jsonl.String())
	}
	if outs[0] != outs[1] {
		t.Fatal("same seed produced different exporter output under a collector crash")
	}
}

func TestSinkDropsCorruptFrames(t *testing.T) {
	c, pm := bootFaultCluster(t, 3, 5, 20)
	defer c.Shutdown()

	// Corrupt every monitoring frame node1 sends during an early window (the
	// final rounds stay clean so the Last handshake is undamaged).
	from := c.Now().Add(30 * time.Millisecond)
	to := c.Now().Add(150 * time.Millisecond)
	c.Net.SetImpair(func(now sim.Time, f netsim.Frame) netsim.Impairment {
		if f.Src == "node1" && f.Dst == "node0" && now >= from && now < to {
			return netsim.Impairment{Corrupt: true}
		}
		return netsim.Impairment{}
	})

	drain(t, c, pm)
	st := pm.Store()
	if st.Drops() == 0 {
		t.Fatal("no frames counted as dropped despite corruption")
	}
	var n1 NodeInfo
	for _, info := range st.Nodes() {
		if info.Name == "node1" {
			n1 = info
		}
	}
	if n1.Drops == 0 || n1.Missed == 0 {
		t.Fatalf("node1 info = %+v, want drops and missed rounds recorded", n1)
	}
	// The pipeline recovered: node1's later frames were ingested and it is
	// not considered down.
	if n1.Rounds == 0 || n1.Down {
		t.Fatalf("node1 info = %+v, want post-corruption recovery", n1)
	}
}

func TestUnreadableFinalRoundStillEmitsLast(t *testing.T) {
	c, pm := bootFaultCluster(t, 2, 9, 6)
	defer c.Shutdown()

	// node1's /proc/ktau fails every read from mid-run on — including every
	// retry of the final round. The agent must ship a gap Last frame so the
	// sink's Recv does not block forever (the collector.go:193 regression).
	failFrom := c.Now().Add(60 * time.Millisecond)
	c.Node(1).FS.SetFaultHook(func(op string) error {
		if c.Node(1).Eng.Now() >= failFrom {
			return procfs.ErrTransient
		}
		return nil
	})

	if !c.RunUntilDone(pm.Tasks(), time.Minute) {
		t.Fatal("pipeline hung: sink never saw a Last frame")
	}
	st := pm.Store()
	var n1 NodeInfo
	for _, info := range st.Nodes() {
		if info.Name == "node1" {
			n1 = info
		}
	}
	if n1.Gaps == 0 {
		t.Fatalf("node1 info = %+v, want gap rounds recorded", n1)
	}
	if n1.Rounds != 6 {
		t.Fatalf("node1 ingested %d rounds, want all 6 (gaps included)", n1.Rounds)
	}
}
