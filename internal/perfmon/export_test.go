package perfmon

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ktau/internal/ktau"
	"ktau/internal/promfmt"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenStore hand-feeds a store with a small fixed scenario: two nodes,
// three kernel events, three rounds, one rank and one daemon per node. The
// exporters' output over it is pinned by the golden files.
func goldenStore() *Store {
	st := NewStore(StoreConfig{Retention: 8})
	for idx, node := range []string{"alpha", "beta"} {
		for round := 0; round < 3; round++ {
			mult := int64(idx + 1)
			f := Frame{
				Node: node, NodeIdx: idx, Round: round, CPUs: 2,
				FromTSC: int64(round) * 1000, ToTSC: int64(round+1) * 1000,
				Last: round == 2,
				Kernel: []ktau.EventDelta{
					{Name: TimerTickEvent, Group: ktau.GroupIRQ, DCalls: 10, DIncl: 20 * mult, DExcl: 20 * mult},
					{Name: "do_softirq", Group: ktau.GroupBH, DCalls: 4, DIncl: 9 * mult, DExcl: 8 * mult},
					{Name: "tcp_v4_rcv", Group: ktau.GroupTCP, DCalls: 6, DIncl: 30 * mult, DExcl: 30 * mult},
				},
				Procs: []ProcDelta{
					{PID: 40 + idx, Name: fmt.Sprintf("app.rank%d", idx), DTotal: 50, DIRQ: 10, DBH: 5, DSched: 35, DTicks: 3},
					{PID: 60 + idx, Name: "crond", DTotal: 12, DIRQ: 4, DSched: 8, DTicks: uint64(idx)},
				},
			}
			st.Ingest(f, 128)
		}
	}
	return st
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file (re-run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenStore().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	checkGolden(t, "export.prom", buf.Bytes())
}

func TestJSONLinesGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenStore().WriteJSONLines(&buf, 0); err != nil {
		t.Fatalf("WriteJSONLines: %v", err)
	}
	checkGolden(t, "export.jsonl", buf.Bytes())
}

func TestClusterViewGolden(t *testing.T) {
	st := goldenStore()
	rep := st.DetectNoise(DetectConfig{}, "app.rank")
	var buf bytes.Buffer
	st.WriteClusterView(&buf, rep, 3)
	checkGolden(t, "clusterview.txt", buf.Bytes())
}

func TestJSONLinesWindow(t *testing.T) {
	var all, last bytes.Buffer
	st := goldenStore()
	if err := st.WriteJSONLines(&all, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteJSONLines(&last, 1); err != nil {
		t.Fatal(err)
	}
	nAll := strings.Count(all.String(), "\n")
	nLast := strings.Count(last.String(), "\n")
	if nAll != 3*nLast {
		t.Fatalf("window slicing broken: %d lines total, %d in last window", nAll, nLast)
	}
}

func TestPrometheusEscapesLabels(t *testing.T) {
	st := NewStore(StoreConfig{})
	st.Ingest(Frame{
		Node: `no"de`, Round: 0, CPUs: 1, ToTSC: 10,
		Kernel: []ktau.EventDelta{{Name: "ev\\il\nname", Group: ktau.GroupIRQ, DCalls: 1, DExcl: 1}},
	}, 0)
	var buf bytes.Buffer
	if err := st.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`no\"de`, `ev\\il\nname`} {
		if !strings.Contains(out, want) {
			t.Fatalf("escaped label %q missing from output:\n%s", want, out)
		}
	}
	if strings.Contains(out, "il\nname") {
		t.Fatal("raw newline leaked into a label")
	}
	// Even with hostile names the document must parse clean.
	if v := promfmt.Lint(buf.Bytes()); len(v) != 0 {
		t.Fatalf("exposition with hostile labels deviates from the format: %v", v)
	}
}

// TestPrometheusExpositionLints runs the strict format validator over the
// golden scenario's exposition: label escaping, HELP/TYPE discipline,
// counter naming, no duplicate series, trailing newline.
func TestPrometheusExpositionLints(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenStore().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if v := promfmt.Lint(buf.Bytes()); len(v) != 0 {
		t.Fatalf("prometheus exposition deviates from the text format: %v", v)
	}
}
