package perfmon

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"ktau/internal/cluster"
	"ktau/internal/kernel"
	"ktau/internal/ktau"
	"ktau/internal/libktau"
	"ktau/internal/procfs"
	"ktau/internal/workload"
)

const (
	testNodes  = 8
	noisyNode  = 5
	testRounds = 12
)

// bootMonitoredCluster builds the standard test fixture: an 8-node cluster
// with system daemons and one compute+communicate rank per node, an anomalous
// "overhead" daemon on one node, and a deployed perfmon pipeline. perfmon is
// the only TCP user, so any TCP activity in kernel profiles is collection
// traffic observing itself.
func bootMonitoredCluster(seed uint64) (*cluster.Cluster, *PerfMon) {
	c := cluster.New(cluster.Config{
		Nodes: cluster.UniformNodes("node", testNodes),
		Ktau: ktau.Options{Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			Mapping: true, RetainExited: true},
		Seed: seed,
	})
	for i, n := range c.Nodes {
		workload.StartSystemDaemons(n.K)
		n.K.Spawn(fmt.Sprintf("app.rank%d", i), func(u *kernel.UCtx) {
			for {
				u.Compute(3 * time.Millisecond)
				u.Sleep(2 * time.Millisecond)
			}
		}, kernel.SpawnOpts{})
	}
	workload.StartDaemon(c.Node(noisyNode).K, workload.DaemonSpec{
		Name: "overhead", Period: 120 * time.Millisecond, Busy: 80 * time.Millisecond,
	})
	pm, err := Deploy(c, Config{
		Interval:   100 * time.Millisecond,
		Rounds:     testRounds,
		RankPrefix: "app.rank",
	})
	if err != nil {
		panic(err)
	}
	return c, pm
}

func runMonitoredCluster(t *testing.T, seed uint64) (*cluster.Cluster, *PerfMon) {
	t.Helper()
	c, pm := bootMonitoredCluster(seed)
	if !c.RunUntilDone(pm.Tasks(), time.Minute) {
		t.Fatal("pipeline did not drain within the deadline")
	}
	return c, pm
}

func TestPipelineEndToEnd(t *testing.T) {
	c, pm := runMonitoredCluster(t, 42)
	defer c.Shutdown()
	st := pm.Store()

	if pm.Collector() != 0 {
		t.Fatalf("Collector() = %d, want 0 (uniform CPUs, lowest index)", pm.Collector())
	}
	if got := st.Frames(); got != testNodes*testRounds {
		t.Fatalf("Frames = %d, want %d", got, testNodes*testRounds)
	}
	names := st.NodeNames()
	if len(names) != testNodes {
		t.Fatalf("NodeNames = %v", names)
	}
	for _, info := range st.Nodes() {
		if info.Rounds != testRounds {
			t.Fatalf("%s ingested %d rounds, want %d", info.Name, info.Rounds, testRounds)
		}
		if info.Name == c.Node(pm.Collector()).Name {
			if info.Bytes != 0 {
				t.Fatalf("collector self-ingest shipped %d wire bytes, want 0", info.Bytes)
			}
		} else if info.Bytes == 0 {
			t.Fatalf("%s shipped no wire bytes", info.Name)
		}
		if info.LastTSC <= info.FirstTSC {
			t.Fatalf("%s monitored span [%d,%d] is empty", info.Name, info.FirstTSC, info.LastTSC)
		}
	}

	// Cluster-wide query: the hottest routines must exist and be ordered.
	top := st.TopK(5, 0)
	if len(top) == 0 {
		t.Fatal("TopK returned nothing")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Excl > top[i-1].Excl {
			t.Fatalf("TopK out of order at %d: %+v", i, top)
		}
	}
	if _, ok := st.Total(names[0], "do_IRQ[timer]"); !ok {
		t.Fatal("timer interrupts missing from the store")
	}

	// Every node's rank shows up in the per-process view. Store order is
	// ingestion order, not node index order, so recover the index by name.
	for _, name := range names {
		rank := "app.rank" + strings.TrimPrefix(name, "node")
		found := false
		for _, p := range st.ProcWindow(name, 0) {
			if p.Name == rank {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s missing from %s's ProcWindow", rank, name)
		}
	}
}

func TestPipelineDetectsNoisyNode(t *testing.T) {
	c, pm := runMonitoredCluster(t, 43)
	defer c.Shutdown()
	st := pm.Store()
	noisy := c.Node(noisyNode).Name

	rep := st.DetectNoise(pm.Config().Detect, pm.Config().RankPrefix)
	if len(rep.Flagged) == 0 {
		t.Fatal("no node flagged despite the overhead daemon")
	}
	flagged := map[string]bool{}
	for _, n := range rep.Flagged {
		flagged[n] = true
	}
	if !flagged[noisy] {
		t.Fatalf("Flagged = %v, must include %s", rep.Flagged, noisy)
	}
	var nn NodeNoise
	for _, cand := range rep.Nodes {
		if cand.Node == noisy {
			nn = cand
		}
	}
	if nn.Node != noisy {
		t.Fatalf("%s missing from the report: %+v", noisy, rep.Nodes)
	}
	// The daemon attribution must finger the injected process specifically.
	if len(nn.TopDaemons) == 0 || nn.TopDaemons[0].Name != "overhead" {
		t.Fatalf("TopDaemons = %+v, want overhead first", nn.TopDaemons)
	}
	// The noisy node's share must be the cluster maximum.
	for _, other := range rep.Nodes {
		if other.Node != noisy && other.Share >= nn.Share {
			t.Fatalf("%s share %.6f >= noisy node's %.6f", other.Node, other.Share, nn.Share)
		}
	}
	// The per-rank view identifies the perturbed rank on the noisy node.
	if len(nn.Ranks) == 0 || nn.Ranks[0].Name != fmt.Sprintf("app.rank%d", noisyNode) {
		t.Fatalf("Ranks = %+v", nn.Ranks)
	}

	// Imbalance ranking covers all ranks and is heaviest-first.
	loads := st.RankImbalance(0, pm.Config().RankPrefix)
	if len(loads) != testNodes {
		t.Fatalf("RankImbalance found %d ranks, want %d", len(loads), testNodes)
	}
	for i := 1; i < len(loads); i++ {
		if loads[i].CPUCycles > loads[i-1].CPUCycles {
			t.Fatalf("RankImbalance out of order at %d", i)
		}
	}
}

// TestPipelineObservesItself checks KTAU's self-observation property end to
// end: collection traffic flows over the instrumented TCP path, so the
// pipeline's own footprint appears both in the collector node's live kernel
// profile and in the store the pipeline built. perfmon is the only TCP user
// in this fixture.
func TestPipelineObservesItself(t *testing.T) {
	c, pm := runMonitoredCluster(t, 44)
	defer c.Shutdown()
	st := pm.Store()
	collector := c.Node(pm.Collector())

	h := libktau.Open(procfs.New(collector.K.Ktau()))
	kw, err := h.GetProfile(libktau.ScopeKernelWide, 0)
	if err != nil {
		t.Fatalf("GetProfile: %v", err)
	}
	for _, ev := range []string{"tcp_v4_rcv", "tcp_recvmsg", "do_softirq"} {
		e := kw.FindEvent(ev)
		if e == nil || e.Calls == 0 {
			t.Fatalf("collector kernel profile missing %s (self-observation broken)", ev)
		}
	}

	// The same footprint must be visible through the pipeline's own store.
	tot, ok := st.Total(collector.Name, "tcp_v4_rcv")
	if !ok || tot.Calls == 0 {
		t.Fatalf("store misses collection traffic on the collector: %+v ok=%v", tot, ok)
	}
	// Agent-side: a monitored (non-collector) node shows the send path.
	agentNode := c.Node(1).Name
	if tot, ok := st.Total(agentNode, "tcp_sendmsg"); !ok || tot.Calls == 0 {
		t.Fatalf("store misses agent send traffic on %s: %+v ok=%v", agentNode, tot, ok)
	}
	// And the agent daemon itself is visible as a process on every node.
	for _, name := range st.NodeNames() {
		found := false
		for _, p := range st.ProcWindow(name, 0) {
			if p.Name == "kmond" {
				found = true
			}
		}
		if !found {
			t.Fatalf("kmond invisible in %s's process view", name)
		}
	}
}

// TestPipelineDeterminism is the regression gate for reproducible monitoring:
// two runs with the same seed must produce byte-identical exporter output
// (satellite requirement). A third run with a different seed must diverge,
// proving the comparison has teeth.
func TestPipelineDeterminism(t *testing.T) {
	render := func(seed uint64) []byte {
		c, pm := runMonitoredCluster(t, seed)
		defer c.Shutdown()
		var buf bytes.Buffer
		st := pm.Store()
		if err := st.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := st.WriteJSONLines(&buf, 0); err != nil {
			t.Fatalf("WriteJSONLines: %v", err)
		}
		rep := st.DetectNoise(pm.Config().Detect, pm.Config().RankPrefix)
		st.WriteClusterView(&buf, rep, 10)
		return buf.Bytes()
	}
	a := render(7)
	b := render(7)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed runs produced different exporter output")
	}
	if other := render(8); bytes.Equal(a, other) {
		t.Fatal("different-seed runs produced identical output (comparison is vacuous)")
	}
}
