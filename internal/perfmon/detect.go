package perfmon

import (
	"sort"
	"strings"

	"ktau/internal/ktau"
)

// DetectConfig tunes the online detectors.
type DetectConfig struct {
	// Window is how many stored samples the detectors examine (0 = all
	// retained).
	Window int
	// NoiseFactor flags a node whose noise share exceeds the cluster median
	// by this factor (default 2.0).
	NoiseFactor float64
	// MinNoiseShare is the absolute share floor below which a node is never
	// flagged, however quiet the cluster median is (default 0.01 = 1% of one
	// CPU's capacity — below that, ordinary system daemons and the perfmon
	// pipeline's own footprint are indistinguishable from an anomaly).
	MinNoiseShare float64
}

func (c *DetectConfig) defaults() {
	if c.NoiseFactor <= 0 {
		c.NoiseFactor = 2.0
	}
	if c.MinNoiseShare <= 0 {
		c.MinNoiseShare = 0.01
	}
}

// ProcNoise attributes window noise to one process.
type ProcNoise struct {
	PID  int
	Name string
	// Cycles estimates the CPU cycles the process stole in the window: the
	// timer ticks that landed in its context (each tick samples whoever
	// occupies the CPU) times the node's cycles-per-tick. Raw cycle sums are
	// unusable here because KTAU charges blocked time to scheduling events.
	Cycles int64
	// Ticks is the raw tick count behind the estimate.
	Ticks uint64
}

// RankNoise is the per-rank interference view: how much interrupt+softirq
// time landed in an application rank's context during the window — the live
// analogue of the Figs. 8-10 "which rank was perturbed" analysis.
type RankNoise struct {
	PID  int
	Name string
	// Interference is IRQ+BH exclusive cycles charged to the rank.
	Interference int64
	// Sched is scheduling cycles charged to the rank; per KTAU semantics
	// these include time spent switched out, so a heavily preempted rank
	// shows a large value (the paper's Fig. 10 view).
	Sched int64
}

// NodeNoise is one node's OS-noise assessment over the window.
type NodeNoise struct {
	Node string
	CPUs int
	// Wall is the window span in node clock cycles.
	Wall int64
	// IRQ/BH are the kernel-wide interrupt and softirq exclusive cycles,
	// reported for context (they include interrupts absorbed by idle CPUs,
	// which perturb nothing).
	IRQ int64
	BH  int64
	// Daemon estimates the CPU cycles stolen by non-rank, non-idle processes,
	// from the timer ticks their contexts absorbed (ticks sample occupancy;
	// on a quiet node they land in idle, which is excluded).
	Daemon int64
	// Noise is Daemon plus the interrupt/softirq cycles that landed in
	// application-rank contexts: the capacity lost to work that was not the
	// application's.
	Noise int64
	// Share is Noise / (Wall × CPUs): the fraction of the node's compute
	// capacity lost to OS noise in the window.
	Share float64
	// Flagged marks the node as anomalously noisy vs the cluster median.
	Flagged bool
	// Down marks a node that stopped reporting (its sink gave up on it —
	// typically a crash). Down nodes are excluded from the cluster median
	// and never flagged as noisy: no data is not the same as quiet.
	Down bool
	// TopDaemons lists the noisiest system processes, largest first.
	TopDaemons []ProcNoise
	// Ranks lists application ranks on the node with their interference,
	// most-perturbed first (requires Config.RankPrefix).
	Ranks []RankNoise
}

// NoiseReport is the cluster-wide OS-noise view.
type NoiseReport struct {
	Window int
	// MedianShare is the cluster median noise share.
	MedianShare float64
	// Threshold is the share above which nodes were flagged.
	Threshold float64
	Nodes     []NodeNoise // node order
	// Flagged lists flagged node names (subset of Nodes).
	Flagged []string
}

// isIdle reports the per-CPU idle tasks, which are never noise sources.
func isIdle(name string) bool { return strings.HasPrefix(name, "swapper/") }

// DetectNoise runs the OS-noise detector over the last cfg.Window stored
// samples: per node it totals interrupt, softirq and daemon activity,
// normalises by the node's compute capacity, and flags nodes whose share
// exceeds the cluster median by the configured factor. rankPrefix classifies
// application processes (it normally comes from Config.RankPrefix).
func (st *Store) DetectNoise(cfg DetectConfig, rankPrefix string) NoiseReport {
	cfg.defaults()
	rep := NoiseReport{Window: cfg.Window}
	var shares []float64
	for _, node := range st.NodeNames() {
		nn := NodeNoise{Node: node, Down: st.Down(node)}
		for _, info := range st.Nodes() {
			if info.Name == node {
				nn.CPUs = info.CPUs
			}
		}
		if nn.CPUs <= 0 {
			nn.CPUs = 1
		}
		nn.Wall = st.WallCycles(node, cfg.Window)
		var nodeTicks uint64
		for _, h := range st.NodeWindow(node, cfg.Window) {
			switch h.Group {
			case ktau.GroupIRQ:
				nn.IRQ += h.Excl
			case ktau.GroupBH:
				nn.BH += h.Excl
			}
			if h.Name == TimerTickEvent {
				nodeTicks = h.Calls
			}
		}
		// Each timer tick samples one CPU's occupant, so the node's window
		// holds Wall×CPUs cycles spread over nodeTicks samples.
		var cyclesPerTick float64
		if nodeTicks > 0 {
			cyclesPerTick = float64(nn.Wall) * float64(nn.CPUs) / float64(nodeTicks)
		}
		for _, p := range st.ProcWindow(node, cfg.Window) {
			if isIdle(p.Name) {
				continue
			}
			isRank := rankPrefix != "" && strings.HasPrefix(p.Name, rankPrefix)
			if isRank {
				nn.Ranks = append(nn.Ranks, RankNoise{
					PID: p.PID, Name: p.Name,
					Interference: p.DIRQ + p.DBH,
					Sched:        p.DSched,
				})
				nn.Noise += p.DIRQ + p.DBH
				continue
			}
			if p.DTicks > 0 {
				stolen := int64(float64(p.DTicks) * cyclesPerTick)
				nn.Daemon += stolen
				nn.Noise += stolen
				nn.TopDaemons = append(nn.TopDaemons, ProcNoise{
					PID: p.PID, Name: p.Name, Cycles: stolen, Ticks: p.DTicks,
				})
			}
		}
		sort.Slice(nn.TopDaemons, func(i, j int) bool {
			if nn.TopDaemons[i].Cycles != nn.TopDaemons[j].Cycles {
				return nn.TopDaemons[i].Cycles > nn.TopDaemons[j].Cycles
			}
			return nn.TopDaemons[i].PID < nn.TopDaemons[j].PID
		})
		sort.Slice(nn.Ranks, func(i, j int) bool {
			if nn.Ranks[i].Interference != nn.Ranks[j].Interference {
				return nn.Ranks[i].Interference > nn.Ranks[j].Interference
			}
			return nn.Ranks[i].PID < nn.Ranks[j].PID
		})
		if nn.Wall > 0 {
			nn.Share = float64(nn.Noise) / (float64(nn.Wall) * float64(nn.CPUs))
		}
		if !nn.Down {
			shares = append(shares, nn.Share)
		}
		rep.Nodes = append(rep.Nodes, nn)
	}
	if len(shares) == 0 {
		return rep
	}
	sorted := append([]float64(nil), shares...)
	sort.Float64s(sorted)
	rep.MedianShare = sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		rep.MedianShare = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	rep.Threshold = rep.MedianShare * cfg.NoiseFactor
	if rep.Threshold < cfg.MinNoiseShare {
		rep.Threshold = cfg.MinNoiseShare
	}
	for i := range rep.Nodes {
		if !rep.Nodes[i].Down && rep.Nodes[i].Share > rep.Threshold {
			rep.Nodes[i].Flagged = true
			rep.Flagged = append(rep.Flagged, rep.Nodes[i].Node)
		}
	}
	return rep
}

// RankLoad is one application rank's CPU load over a window.
type RankLoad struct {
	Node string
	PID  int
	Name string
	// CPUCycles estimates the rank's CPU consumption from its tick
	// absorption (a rank that needs more CPU time for the same elapsed
	// window is running slow — interference or a weaker node).
	CPUCycles int64
	// Ticks is the raw tick count behind the estimate.
	Ticks uint64
	// Ratio is CPUCycles / cluster mean (1.0 = typical).
	Ratio float64
}

// RankImbalance is the slow-node/imbalance view over a window: application
// ranks sorted by estimated CPU consumption, heaviest first. A healthy
// balanced job shows ratios near 1; stragglers stand out at the top.
func (st *Store) RankImbalance(window int, rankPrefix string) []RankLoad {
	if rankPrefix == "" {
		return nil
	}
	var out []RankLoad
	var sum int64
	for _, info := range st.Nodes() {
		cpus := info.CPUs
		if cpus <= 0 {
			cpus = 1
		}
		var nodeTicks uint64
		for _, h := range st.NodeWindow(info.Name, window) {
			if h.Name == TimerTickEvent {
				nodeTicks = h.Calls
			}
		}
		var cyclesPerTick float64
		if nodeTicks > 0 {
			cyclesPerTick = float64(st.WallCycles(info.Name, window)) * float64(cpus) / float64(nodeTicks)
		}
		for _, p := range st.ProcWindow(info.Name, window) {
			if !strings.HasPrefix(p.Name, rankPrefix) {
				continue
			}
			cyc := int64(float64(p.DTicks) * cyclesPerTick)
			out = append(out, RankLoad{
				Node: info.Name, PID: p.PID, Name: p.Name,
				CPUCycles: cyc, Ticks: p.DTicks,
			})
			sum += cyc
		}
	}
	if len(out) == 0 {
		return nil
	}
	mean := float64(sum) / float64(len(out))
	for i := range out {
		if mean > 0 {
			out[i].Ratio = float64(out[i].CPUCycles) / mean
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CPUCycles != out[j].CPUCycles {
			return out[i].CPUCycles > out[j].CPUCycles
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].PID < out[j].PID
	})
	return out
}
