package perfmon

import (
	"sort"

	"ktau/internal/ktau"
)

// StoreConfig bounds the collector's time-series memory.
type StoreConfig struct {
	// Retention is the ring capacity: how many stored samples each
	// (node, event) series keeps (default 64). Older samples are evicted.
	Retention int
	// Downsample aggregates this many consecutive collection rounds into one
	// stored sample (default 1 = store every round). With D > 1 the store's
	// horizon is Retention×D rounds at 1/D resolution.
	Downsample int
}

func (c *StoreConfig) defaults() {
	if c.Retention <= 0 {
		c.Retention = 64
	}
	if c.Downsample <= 0 {
		c.Downsample = 1
	}
}

// Sample is one stored time-series point of a (node, event) series: the
// event's activity delta over the sample's window.
type Sample struct {
	// Round is the last collection round folded into this sample.
	Round  int
	DCalls uint64
	DIncl  int64
	DExcl  int64
}

// RoundMark records one stored window's bounds on the node's clock.
type RoundMark struct {
	Round   int
	FromTSC int64
	ToTSC   int64
}

// EventTotal is a series' cumulative state since monitoring began.
type EventTotal struct {
	Name  string
	Group ktau.Group
	Calls uint64
	Incl  int64
	Excl  int64
}

// ProcSample is one stored window of a per-process series.
type ProcSample struct {
	Round  int
	DTotal int64
	DIRQ   int64
	DBH    int64
	DSched int64
	DTCP   int64
	DTicks uint64
}

// ring is a fixed-capacity circular buffer.
type ring[T any] struct {
	buf  []T
	head int // index of oldest element
	n    int
}

func newRing[T any](capacity int) *ring[T] { return &ring[T]{buf: make([]T, capacity)} }

func (r *ring[T]) push(v T) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}

// items returns the retained elements oldest-first.
func (r *ring[T]) items() []T {
	out := make([]T, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

func (r *ring[T]) len() int { return r.n }

type eventSeries struct {
	group ktau.Group
	ring  *ring[Sample]
	cum   EventTotal
	// acc accumulates rounds until the downsample factor is reached.
	acc      Sample
	accDirty bool
}

type procSeries struct {
	pid  int
	name string
	ring *ring[ProcSample]
	cum  ProcSample
	acc  ProcSample
	// dirty reports pending accumulated-but-unflushed activity.
	dirty bool
}

// nodeState is everything the store retains about one monitored node.
type nodeState struct {
	name      string
	idx       int
	cpus      int
	rounds    int // frames ingested
	bytes     uint64
	lastTSC   int64
	firstTSC  int64
	marks     *ring[RoundMark]
	markAcc   RoundMark
	accRuns   int // rounds accumulated toward the next stored sample
	events    map[string]*eventSeries
	procs     map[int]*procSeries
	lastRound int // highest round ingested (-1 before the first frame)
	missed    int // rounds skipped in the round sequence (frames never arrived)
	gaps      int // Gap frames ingested (the agent could not read its data)
	drops     uint64
	down      bool
}

// Store is the collector's bounded time-series database: per node × kernel
// event × metric (calls, inclusive, exclusive cycles), with per-process
// window summaries riding along for the detectors.
type Store struct {
	cfg    StoreConfig
	nodes  map[string]*nodeState
	order  []string // ingestion-order node names, for deterministic iteration
	frames uint64
	drops  uint64 // frames received but discarded (undecodable, corrupt, desynced)
}

// NewStore creates an empty store.
func NewStore(cfg StoreConfig) *Store {
	cfg.defaults()
	return &Store{cfg: cfg, nodes: make(map[string]*nodeState)}
}

// Config returns the store's bounds.
func (st *Store) Config() StoreConfig { return st.cfg }

// Frames returns the total number of ingested frames.
func (st *Store) Frames() uint64 { return st.frames }

// Drops returns the total number of discarded frames.
func (st *Store) Drops() uint64 { return st.drops }

// Drop counts a frame that arrived but could not be ingested (undecodable
// payload, corrupted in flight, or framing desync). node may be empty when
// the frame was too damaged to attribute.
func (st *Store) Drop(node string) {
	st.drops++
	if node != "" {
		st.node(node).drops++
	}
}

// MarkDown records that a node has stopped reporting (its sink gave up on
// it). A later ingested frame from the node clears the mark.
func (st *Store) MarkDown(node string) { st.node(node).down = true }

// Down reports whether the node is currently marked down.
func (st *Store) Down(node string) bool {
	ns := st.nodes[node]
	return ns != nil && ns.down
}

// NodeNames returns monitored node names in first-seen order.
func (st *Store) NodeNames() []string {
	out := make([]string, len(st.order))
	copy(out, st.order)
	return out
}

func (st *Store) node(name string) *nodeState {
	if ns, ok := st.nodes[name]; ok {
		return ns
	}
	ns := &nodeState{
		name:      name,
		idx:       len(st.order),
		marks:     newRing[RoundMark](st.cfg.Retention),
		events:    make(map[string]*eventSeries),
		procs:     make(map[int]*procSeries),
		firstTSC:  -1,
		lastRound: -1,
	}
	st.nodes[name] = ns
	st.order = append(st.order, name)
	return ns
}

// Ingest folds one frame into the store. Payload size accounting is the
// caller's (the sink knows the wire length; tests may pass 0).
func (st *Store) Ingest(f Frame, wireBytes int) {
	st.frames++
	ns := st.node(f.Node)
	ns.idx = f.NodeIdx
	ns.cpus = f.CPUs
	ns.rounds++
	ns.bytes += uint64(wireBytes)
	ns.down = false // hearing from the node proves it back
	if ns.lastRound >= 0 && f.Round > ns.lastRound+1 {
		// Frames for the intervening rounds never arrived (lost in a
		// failover or dropped): record the hole.
		ns.missed += f.Round - ns.lastRound - 1
	}
	if f.Round > ns.lastRound {
		ns.lastRound = f.Round
	}
	if f.Gap {
		ns.gaps++
	}
	if ns.firstTSC < 0 {
		ns.firstTSC = f.FromTSC
	}
	ns.lastTSC = f.ToTSC

	if ns.accRuns == 0 {
		ns.markAcc = RoundMark{Round: f.Round, FromTSC: f.FromTSC, ToTSC: f.ToTSC}
	} else {
		ns.markAcc.Round = f.Round
		ns.markAcc.ToTSC = f.ToTSC
	}

	for _, e := range f.Kernel {
		s := ns.events[e.Name]
		if s == nil {
			s = &eventSeries{group: e.Group, ring: newRing[Sample](st.cfg.Retention)}
			s.cum.Name = e.Name
			s.cum.Group = e.Group
			ns.events[e.Name] = s
		}
		if e.Absolute {
			// The node's profile was reset: restart the cumulative view.
			s.cum.Calls = e.DCalls
			s.cum.Incl = e.DIncl
			s.cum.Excl = e.DExcl
		} else {
			s.cum.Calls += e.DCalls
			s.cum.Incl += e.DIncl
			s.cum.Excl += e.DExcl
		}
		s.acc.Round = f.Round
		s.acc.DCalls += e.DCalls
		s.acc.DIncl += e.DIncl
		s.acc.DExcl += e.DExcl
		s.accDirty = true
	}
	for _, p := range f.Procs {
		ps := ns.procs[p.PID]
		if ps == nil {
			ps = &procSeries{pid: p.PID, name: p.Name, ring: newRing[ProcSample](st.cfg.Retention)}
			ns.procs[p.PID] = ps
		}
		ps.name = p.Name
		ps.cum.DTotal += p.DTotal
		ps.cum.DIRQ += p.DIRQ
		ps.cum.DBH += p.DBH
		ps.cum.DSched += p.DSched
		ps.cum.DTCP += p.DTCP
		ps.cum.DTicks += p.DTicks
		ps.acc.Round = f.Round
		ps.acc.DTotal += p.DTotal
		ps.acc.DIRQ += p.DIRQ
		ps.acc.DBH += p.DBH
		ps.acc.DSched += p.DSched
		ps.acc.DTCP += p.DTCP
		ps.acc.DTicks += p.DTicks
		ps.dirty = true
	}

	ns.accRuns++
	if ns.accRuns >= st.cfg.Downsample || f.Last {
		ns.flush()
	}
}

// flush moves accumulated rounds into the rings (one stored sample).
func (ns *nodeState) flush() {
	if ns.accRuns == 0 {
		return
	}
	ns.marks.push(ns.markAcc)
	for _, s := range ns.events {
		if s.accDirty {
			s.ring.push(s.acc)
			s.acc = Sample{}
			s.accDirty = false
		}
	}
	for _, ps := range ns.procs {
		if ps.dirty {
			ps.ring.push(ps.acc)
			ps.acc = ProcSample{}
			ps.dirty = false
		}
	}
	ns.accRuns = 0
}

// ---- queries ----

// NodeInfo summarises one monitored node's collection state.
type NodeInfo struct {
	Name   string
	Idx    int
	CPUs   int
	Rounds int
	Bytes  uint64
	// FirstTSC/LastTSC bound the monitored span on the node's clock.
	FirstTSC int64
	LastTSC  int64
	// Missed counts rounds whose frames never arrived (holes in the round
	// sequence); Gaps counts rounds the agent reported as unreadable; Drops
	// counts frames received from the node but discarded.
	Missed int
	Gaps   int
	Drops  uint64
	// Down marks a node whose sink gave up waiting for it.
	Down bool
}

// Nodes returns per-node collection state in first-seen order.
func (st *Store) Nodes() []NodeInfo {
	out := make([]NodeInfo, 0, len(st.order))
	for _, name := range st.order {
		ns := st.nodes[name]
		out = append(out, NodeInfo{
			Name: ns.name, Idx: ns.idx, CPUs: ns.cpus, Rounds: ns.rounds,
			Bytes: ns.bytes, FirstTSC: ns.firstTSC, LastTSC: ns.lastTSC,
			Missed: ns.missed, Gaps: ns.gaps, Drops: ns.drops, Down: ns.down,
		})
	}
	return out
}

// Totals returns a node's cumulative per-event totals sorted by name, or nil
// for an unknown node.
func (st *Store) Totals(node string) []EventTotal {
	ns := st.nodes[node]
	if ns == nil {
		return nil
	}
	out := make([]EventTotal, 0, len(ns.events))
	for _, s := range ns.events {
		out = append(out, s.cum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Total returns one node's cumulative total for the named event.
func (st *Store) Total(node, event string) (EventTotal, bool) {
	ns := st.nodes[node]
	if ns == nil {
		return EventTotal{}, false
	}
	s := ns.events[event]
	if s == nil {
		return EventTotal{}, false
	}
	return s.cum, true
}

// windowFloor returns the lowest round number inside the last `window`
// stored samples of the node (0 selects everything retained).
func (ns *nodeState) windowFloor(window int) int {
	marks := ns.marks.items()
	if window <= 0 || window >= len(marks) {
		if len(marks) == 0 {
			return 0
		}
		return marks[0].Round
	}
	return marks[len(marks)-window].Round
}

// Series returns the retained samples of one (node, event) series whose
// rounds fall inside the last `window` stored windows (0 = all retained).
func (st *Store) Series(node, event string, window int) []Sample {
	ns := st.nodes[node]
	if ns == nil {
		return nil
	}
	s := ns.events[event]
	if s == nil {
		return nil
	}
	floor := ns.windowFloor(window)
	var out []Sample
	for _, smp := range s.ring.items() {
		if smp.Round >= floor {
			out = append(out, smp)
		}
	}
	return out
}

// Marks returns a node's retained window bounds, oldest first.
func (st *Store) Marks(node string) []RoundMark {
	ns := st.nodes[node]
	if ns == nil {
		return nil
	}
	return ns.marks.items()
}

// HotEvent is one kernel routine's activity over a queried window.
type HotEvent struct {
	Name  string
	Group ktau.Group
	Calls uint64
	Incl  int64
	Excl  int64
	// Nodes is how many nodes contributed activity.
	Nodes int
}

// TopK returns the K hottest kernel routines cluster-wide by exclusive
// cycles over the last `window` stored samples (0 = all retained), ties
// broken by name for determinism.
func (st *Store) TopK(k, window int) []HotEvent {
	agg := map[string]*HotEvent{}
	for _, name := range st.order {
		ns := st.nodes[name]
		floor := ns.windowFloor(window)
		for evName, s := range ns.events {
			var calls uint64
			var incl, excl int64
			for _, smp := range s.ring.items() {
				if smp.Round >= floor {
					calls += smp.DCalls
					incl += smp.DIncl
					excl += smp.DExcl
				}
			}
			if calls == 0 && excl == 0 {
				continue
			}
			h := agg[evName]
			if h == nil {
				h = &HotEvent{Name: evName, Group: s.group}
				agg[evName] = h
			}
			h.Calls += calls
			h.Incl += incl
			h.Excl += excl
			h.Nodes++
		}
	}
	out := make([]HotEvent, 0, len(agg))
	for _, h := range agg {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Excl != out[j].Excl {
			return out[i].Excl > out[j].Excl
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// NodeWindow sums one node's per-event activity over the last `window`
// stored samples, sorted by exclusive cycles (hottest first).
func (st *Store) NodeWindow(node string, window int) []HotEvent {
	ns := st.nodes[node]
	if ns == nil {
		return nil
	}
	floor := ns.windowFloor(window)
	var out []HotEvent
	for evName, s := range ns.events {
		var h HotEvent
		h.Name = evName
		h.Group = s.group
		for _, smp := range s.ring.items() {
			if smp.Round >= floor {
				h.Calls += smp.DCalls
				h.Incl += smp.DIncl
				h.Excl += smp.DExcl
			}
		}
		if h.Calls == 0 && h.Excl == 0 {
			continue
		}
		h.Nodes = 1
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Excl != out[j].Excl {
			return out[i].Excl > out[j].Excl
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ProcWindowTotal is one process's summed activity over a queried window.
type ProcWindowTotal struct {
	PID  int
	Name string
	ProcSample
}

// ProcWindow sums a node's per-process activity over the last `window`
// stored samples, sorted by PID for determinism.
func (st *Store) ProcWindow(node string, window int) []ProcWindowTotal {
	ns := st.nodes[node]
	if ns == nil {
		return nil
	}
	floor := ns.windowFloor(window)
	var out []ProcWindowTotal
	for pid, ps := range ns.procs {
		t := ProcWindowTotal{PID: pid, Name: ps.name}
		for _, smp := range ps.ring.items() {
			if smp.Round >= floor {
				t.DTotal += smp.DTotal
				t.DIRQ += smp.DIRQ
				t.DBH += smp.DBH
				t.DSched += smp.DSched
				t.DTCP += smp.DTCP
				t.DTicks += smp.DTicks
			}
		}
		if t.DTotal == 0 && t.DSched == 0 && t.DTicks == 0 {
			continue
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// RoundsOverlapping returns the stored rounds of a node whose [FromTSC,
// ToTSC] window overlaps any of the given [from, to] TSC windows, in
// ascending round order. It is the bridge from application-level excursion
// windows (e.g. a tail request's admit→done span) to the kernel samples
// that cover them.
func (st *Store) RoundsOverlapping(node string, wins [][2]int64) []int {
	ns := st.nodes[node]
	if ns == nil || len(wins) == 0 {
		return nil
	}
	var out []int
	for _, m := range ns.marks.items() {
		for _, w := range wins {
			if m.ToTSC >= w[0] && m.FromTSC <= w[1] {
				out = append(out, m.Round)
				break
			}
		}
	}
	return out
}

// roundSet answers membership over a sorted ascending round list.
func roundSet(rounds []int) func(int) bool {
	return func(r int) bool {
		i := sort.SearchInts(rounds, r)
		return i < len(rounds) && rounds[i] == r
	}
}

// NodeWindowRounds sums one node's per-event activity over an explicit set
// of stored rounds (ascending, as returned by RoundsOverlapping), sorted by
// exclusive cycles hottest-first like NodeWindow.
func (st *Store) NodeWindowRounds(node string, rounds []int) []HotEvent {
	ns := st.nodes[node]
	if ns == nil || len(rounds) == 0 {
		return nil
	}
	in := roundSet(rounds)
	var out []HotEvent
	for evName, s := range ns.events {
		var h HotEvent
		h.Name = evName
		h.Group = s.group
		for _, smp := range s.ring.items() {
			if in(smp.Round) {
				h.Calls += smp.DCalls
				h.Incl += smp.DIncl
				h.Excl += smp.DExcl
			}
		}
		if h.Calls == 0 && h.Excl == 0 {
			continue
		}
		h.Nodes = 1
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Excl != out[j].Excl {
			return out[i].Excl > out[j].Excl
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ProcWindowRounds sums a node's per-process activity over an explicit set
// of stored rounds (ascending), sorted by PID for determinism.
func (st *Store) ProcWindowRounds(node string, rounds []int) []ProcWindowTotal {
	ns := st.nodes[node]
	if ns == nil || len(rounds) == 0 {
		return nil
	}
	in := roundSet(rounds)
	var out []ProcWindowTotal
	for pid, ps := range ns.procs {
		t := ProcWindowTotal{PID: pid, Name: ps.name}
		for _, smp := range ps.ring.items() {
			if in(smp.Round) {
				t.DTotal += smp.DTotal
				t.DIRQ += smp.DIRQ
				t.DBH += smp.DBH
				t.DSched += smp.DSched
				t.DTCP += smp.DTCP
				t.DTicks += smp.DTicks
			}
		}
		if t.DTotal == 0 && t.DSched == 0 && t.DTicks == 0 {
			continue
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// WallCyclesRounds sums the wall-clock spans of an explicit set of stored
// rounds (ascending) on a node's clock.
func (st *Store) WallCyclesRounds(node string, rounds []int) int64 {
	ns := st.nodes[node]
	if ns == nil || len(rounds) == 0 {
		return 0
	}
	in := roundSet(rounds)
	var total int64
	for _, m := range ns.marks.items() {
		if in(m.Round) {
			total += m.ToTSC - m.FromTSC
		}
	}
	return total
}

// WallCycles returns the span of the last `window` stored windows on a
// node's clock (0 = whole monitored span).
func (st *Store) WallCycles(node string, window int) int64 {
	ns := st.nodes[node]
	if ns == nil {
		return 0
	}
	marks := ns.marks.items()
	if len(marks) == 0 {
		return 0
	}
	first := marks[0]
	if window > 0 && window < len(marks) {
		first = marks[len(marks)-window]
	}
	return marks[len(marks)-1].ToTSC - first.FromTSC
}
