package perfmon

import (
	"testing"

	"ktau/internal/ktau"
)

// TestAppendFrameZeroAllocsSteadyState pins the per-round frame encode at
// zero steady-state allocations when the caller reuses its buffer (the agent
// loop's pattern); the single per-frame allocation budget is spent by the
// link queue's copy-out, not the encoder.
func TestAppendFrameZeroAllocsSteadyState(t *testing.T) {
	f := Frame{Node: "n3", NodeIdx: 3, Round: 17, CPUs: 2, FromTSC: 100, ToTSC: 900}
	for i := 0; i < 40; i++ {
		f.Kernel = append(f.Kernel, ktau.EventDelta{
			ID: ktau.EventID(i + 1), Name: "do_IRQ[timer]", Group: ktau.GroupIRQ,
			DCalls: 10, DIncl: 1000, DExcl: 900,
		})
	}
	for i := 0; i < 8; i++ {
		f.Procs = append(f.Procs, ProcDelta{PID: i, Name: "lu.A", DTotal: 123})
	}
	var buf []byte
	buf = AppendFrame(buf[:0], f) // warm to steady-state capacity

	allocs := testing.AllocsPerRun(500, func() {
		buf = AppendFrame(buf[:0], f)
	})
	if allocs != 0 {
		t.Fatalf("AppendFrame allocated %.2f allocs/frame, want 0", allocs)
	}
}
