// Package perfmon is the cluster-wide online monitoring pipeline: the layer
// the paper's title promises ("integrated parallel performance views") built
// on top of KTAU's per-node machinery. Each node runs a KTAUD-style agent
// (§4.5) that reads /proc/ktau on an interval, delta-encodes the kernel-wide
// profile against the previous round, and ships the frame over the simulated
// TCP network to an elected collector node. Collection traffic therefore
// flows through the same instrumented TCP path as application traffic, so
// the pipeline observes its own interference — the self-observation property
// KTAU claims.
//
// The collector maintains a bounded ring-buffer time-series store (per node
// × kernel event × {calls, incl, excl}) with configurable retention and
// downsampling, answers cluster-wide queries (top-K hottest kernel routines,
// per-node merges, time-window slices), runs online detectors (OS-noise /
// daemon interference as in Figs. 8-10, slow-node ranking), and exports
// Prometheus text, JSON lines and a human ASCII cluster view.
//
// The pipeline is fault-tolerant: agents retry transient procfs errors with
// bounded backoff and ship explicit gap frames when a round's data stays
// unreadable; sinks receive with timeouts, count-and-drop damaged frames,
// and mark a node down instead of blocking forever when it stops reporting;
// and when the collector node itself dies, agents detect the broken link,
// re-elect a live collector and reconnect — the store (held by the PerfMon,
// not the dead node) keeps every pre-crash sample.
package perfmon

import (
	"errors"
	"time"

	"ktau/internal/cluster"
	"ktau/internal/kernel"
	"ktau/internal/ktau"
	"ktau/internal/libktau"
	"ktau/internal/tcpsim"
)

// Config parameterises a deployment.
type Config struct {
	// Interval between collection rounds on every agent (default 100ms).
	Interval time.Duration
	// Rounds bounds each agent's collection loop (0 = run until Stop or
	// kernel shutdown). The final round is flagged so sinks drain cleanly.
	Rounds int
	// Store bounds the collector's time-series memory.
	Store StoreConfig
	// Detect configures the online detectors.
	Detect DetectConfig
	// RankPrefix identifies application processes by task-name prefix (e.g.
	// "LU.rank"); everything else except idle tasks counts as system/daemon
	// activity for the noise detector. Empty disables rank classification.
	RankPrefix string
	// ReadCostPerKB models agent-side processing cost per KiB of profile
	// data each round (default 20us/KB, as KTAUD).
	ReadCostPerKB time.Duration
	// Collector overrides the election result when >= 0 (default -1).
	Collector int
	// ReadRetries bounds how many times an agent retries a failed procfs
	// read within one round before shipping a gap frame (default 3).
	ReadRetries int
	// ReadBackoff is the sleep between procfs read retries (default
	// Interval/10).
	ReadBackoff time.Duration
	// RecvTimeout bounds each sink receive; a sink that times out checks its
	// peer's health instead of blocking forever (default 4×Interval).
	RecvTimeout time.Duration
	// SendTimeout bounds each agent's frame transmission; an expired send
	// marks the collector link broken and triggers re-election (default
	// 4×Interval).
	SendTimeout time.Duration
	// PeerDownAfter is how many consecutive receive timeouts a sink
	// tolerates before marking its node down and exiting (default 3).
	PeerDownAfter int
}

func (c *Config) defaults() {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.ReadCostPerKB <= 0 {
		c.ReadCostPerKB = 20 * time.Microsecond
	}
	if c.ReadRetries <= 0 {
		c.ReadRetries = 3
	}
	if c.ReadBackoff <= 0 {
		c.ReadBackoff = c.Interval / 10
	}
	if c.RecvTimeout <= 0 {
		c.RecvTimeout = 4 * c.Interval
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = 4 * c.Interval
	}
	if c.PeerDownAfter <= 0 {
		c.PeerDownAfter = 3
	}
	c.Store.defaults()
	c.Detect.defaults()
}

// Elect picks the collector node deterministically among live nodes: the
// node with the most CPUs wins (it absorbs the aggregation load), ties
// broken by lowest index — a stand-in for a leader election among identical
// daemons. It returns -1 when no live node exists.
func Elect(c *cluster.Cluster) int {
	best := -1
	for i, n := range c.Nodes {
		if n.K.Crashed() {
			continue
		}
		if best < 0 || n.K.NumCPUs() > c.Node(best).K.NumCPUs() {
			best = i
		}
	}
	return best
}

// link carries the Go-side payload queue of one agent→collector connection;
// the simulated TCP stream carries matching byte counts (the same framing
// convention mpisim uses), so the transfer is fully charged as kernel work
// on both nodes while the decoded payload rides alongside deterministically.
type link struct {
	nodeIdx   int          // monitored node this link carries
	agentConn *tcpsim.Conn // agent-side endpoint
	sinkConn  *tcpsim.Conn // collector-side endpoint
	pending   [][]byte     // encoded frames in flight, FIFO
}

// PerfMon is a deployed monitoring pipeline.
type PerfMon struct {
	cfg       Config
	c         *cluster.Cluster
	store     *Store
	collector int
	agents    []*kernel.Task
	sinks     []*kernel.Task
	// links is indexed by node; the collector's own entry is nil (it ingests
	// locally). Entries are swapped during failover.
	links     []*link
	failovers int
	stopped   bool
}

// Deploy elects a collector, connects every other node to it over the
// simulated network, and spawns the per-node agent daemons ("kmond") plus
// one sink task per connection on the collector. Call before launching the
// workload; drive the engine afterwards (e.g. cluster.RunUntilDone on
// Tasks()). It fails when the cluster has no live node to collect on.
func Deploy(c *cluster.Cluster, cfg Config) (*PerfMon, error) {
	cfg.defaults()
	if len(c.Nodes) == 0 {
		return nil, errors.New("perfmon: cannot deploy on an empty cluster")
	}
	collector := cfg.Collector
	if collector < 0 || collector >= len(c.Nodes) || c.Node(collector).K.Crashed() {
		collector = Elect(c)
	}
	if collector < 0 {
		return nil, errors.New("perfmon: no live node to collect on")
	}
	pm := &PerfMon{
		cfg:       cfg,
		c:         c,
		store:     NewStore(cfg.Store),
		collector: collector,
		links:     make([]*link, len(c.Nodes)),
	}
	for i, n := range c.Nodes {
		if i == collector {
			// The collector monitors itself without a network hop.
			pm.agents = append(pm.agents, pm.spawnAgent(i, n))
			continue
		}
		agentConn, sinkConn := tcpsim.Connect(n.Stack, c.Node(collector).Stack)
		l := &link{nodeIdx: i, agentConn: agentConn, sinkConn: sinkConn}
		pm.links[i] = l
		pm.agents = append(pm.agents, pm.spawnAgent(i, n))
		pm.sinks = append(pm.sinks, pm.spawnSink(c.Node(collector), l))
	}
	return pm, nil
}

// Store returns the collector's time-series store.
func (pm *PerfMon) Store() *Store { return pm.store }

// Collector returns the current collector node index (it changes when the
// elected node dies and the agents fail over).
func (pm *PerfMon) Collector() int { return pm.collector }

// Failovers returns how many collector re-elections have happened.
func (pm *PerfMon) Failovers() int { return pm.failovers }

// Config returns the deployment configuration (defaults applied).
func (pm *PerfMon) Config() Config { return pm.cfg }

// Tasks returns every task the deployment spawned (agents then sinks);
// RunUntilDone over these drains the pipeline after Stop or bounded Rounds.
// Failover spawns replacement sinks, so re-query after driving the engine.
func (pm *PerfMon) Tasks() []*kernel.Task {
	out := make([]*kernel.Task, 0, len(pm.agents)+len(pm.sinks))
	out = append(out, pm.agents...)
	out = append(out, pm.sinks...)
	return out
}

// Agents returns the per-node collection daemons (node order).
func (pm *PerfMon) Agents() []*kernel.Task { return pm.agents }

// Sinks returns the collector-side receiver tasks (including any
// replacements spawned by failover).
func (pm *PerfMon) Sinks() []*kernel.Task { return pm.sinks }

// Stop asks every agent to perform one final collection round (flagged
// Last) and exit; sinks exit after ingesting the final frame. Drive the
// engine afterwards to drain the pipeline.
func (pm *PerfMon) Stop() { pm.stopped = true }

// groupExcl sums exclusive cycles of one group in a snapshot delta.
func groupExcl(evs []ktau.EventDelta, g ktau.Group) int64 {
	var t int64
	for _, e := range evs {
		if e.Group == g {
			t += e.DExcl
		}
	}
	return t
}

// agentState is the delta-encoding baseline one agent carries between
// rounds. It is split out of the agent loop so the round logic is testable
// without a cluster.
type agentState struct {
	prevKW   ktau.Snapshot
	prevProc map[int]ktau.Snapshot
}

func newAgentState() *agentState {
	return &agentState{prevProc: make(map[int]ktau.Snapshot)}
}

// buildFrame delta-encodes one successfully read round against the baseline
// and advances it. PIDs absent from the current read are evicted from the
// baseline: once a process is gone from procfs it can never produce another
// delta, and keeping its snapshot would grow the map without bound under
// process churn.
func (a *agentState) buildFrame(node string, idx, round, cpus int, last bool,
	kw ktau.Snapshot, procs []ktau.Snapshot) Frame {
	f := Frame{
		Node:    node,
		NodeIdx: idx,
		Round:   round,
		CPUs:    cpus,
		FromTSC: a.prevKW.TSC,
		ToTSC:   kw.TSC,
		Last:    last,
	}
	f.Kernel = ktau.DeltaSnapshot(a.prevKW, kw).Events
	a.prevKW = kw
	next := make(map[int]ktau.Snapshot, len(procs))
	for _, ps := range procs {
		pd := ktau.DeltaSnapshot(a.prevProc[ps.PID], ps)
		next[ps.PID] = ps
		if pd.Empty() {
			continue
		}
		var ticks uint64
		if te := pd.FindDelta(TimerTickEvent); te != nil {
			ticks = te.DCalls
		}
		f.Procs = append(f.Procs, ProcDelta{
			PID:    ps.PID,
			Name:   ps.Name,
			DTotal: pd.TotalDExcl(),
			DIRQ:   groupExcl(pd.Events, ktau.GroupIRQ),
			DBH:    groupExcl(pd.Events, ktau.GroupBH),
			DSched: groupExcl(pd.Events, ktau.GroupSched),
			DTCP:   groupExcl(pd.Events, ktau.GroupTCP),
			DTicks: ticks,
		})
	}
	a.prevProc = next
	return f
}

// gapFrame builds the placeholder for a round whose data stayed unreadable.
// The baseline is left untouched, so the next successful round's deltas
// cover the whole span including this gap.
func (a *agentState) gapFrame(node string, idx, round, cpus int, last bool) Frame {
	return Frame{
		Node:    node,
		NodeIdx: idx,
		Round:   round,
		CPUs:    cpus,
		FromTSC: a.prevKW.TSC,
		ToTSC:   a.prevKW.TSC,
		Last:    last,
		Gap:     true,
	}
}

// spawnAgent starts the per-node collection daemon. The agent reads through
// the node's shared procfs instance (so injected procfs faults reach it),
// retries transient errors with bounded backoff, and always emits a frame
// per round — a gap frame when the data stayed unreadable — so the sink's
// Last-frame handshake cannot be skipped.
func (pm *PerfMon) spawnAgent(idx int, n *cluster.Node) *kernel.Task {
	h := libktau.Open(n.FS)
	cfg := pm.cfg
	return n.K.Spawn("kmond", func(u *kernel.UCtx) {
		st := newAgentState()
		for round := 0; ; round++ {
			if cfg.Rounds > 0 && round >= cfg.Rounds {
				return
			}
			final := pm.stopped
			if !final {
				u.Sleep(cfg.Interval)
				final = pm.stopped // may have been stopped while sleeping
			}
			last := final || (cfg.Rounds > 0 && round == cfg.Rounds-1)

			// The session-less two-call protocol, charged to the agent
			// exactly as KTAUD charges it; transient faults are retried
			// with backoff inside the round.
			var kw ktau.Snapshot
			var procs []ktau.Snapshot
			readOK := false
			for attempt := 0; attempt < cfg.ReadRetries; attempt++ {
				if attempt > 0 {
					u.Sleep(cfg.ReadBackoff)
				}
				u.Syscall("sys_ioctl", func(kc *kernel.KCtx) { kc.Use(2 * time.Microsecond) })
				var errKW, errAll error
				kw, errKW = h.GetProfile(libktau.ScopeKernelWide, 0)
				procs, errAll = h.GetProfiles(libktau.ScopeAll, 0)
				u.Syscall("sys_read", func(kc *kernel.KCtx) { kc.Use(4 * time.Microsecond) })
				if errKW == nil && errAll == nil {
					readOK = true
					break
				}
			}

			var f Frame
			if readOK {
				f = st.buildFrame(n.Name, idx, round, u.Kernel().NumCPUs(), last, kw, procs)
			} else {
				f = st.gapFrame(n.Name, idx, round, u.Kernel().NumCPUs(), last)
			}

			payload := EncodeFrame(f)
			if readOK {
				// User-space processing: snapshot walk + delta encode.
				readBytes := 0
				for _, s := range procs {
					readBytes += 64 + 48*len(s.Events) + 64*len(s.Atomics) + 64*len(s.Mapped)
				}
				u.Compute(time.Duration(readBytes/1024+1) * cfg.ReadCostPerKB)
			}

			pm.ship(idx, n, u, f, payload)
			if f.Last {
				return
			}
		}
	}, kernel.SpawnOpts{Kind: kernel.KindDaemon})
}

// ship delivers one frame to the current collector: locally when this node
// is the collector, otherwise over the node's link. A send that times out
// means the collector is unreachable — the agent re-elects and reconnects.
func (pm *PerfMon) ship(idx int, n *cluster.Node, u *kernel.UCtx, f Frame, payload []byte) {
	l := pm.links[idx]
	if idx == pm.collector && l == nil {
		pm.store.Ingest(f, 0)
		return
	}
	if l != nil {
		l.pending = append(l.pending, payload)
		if l.agentConn.SendTimeout(u, FrameHeaderBytes+len(payload), pm.cfg.SendTimeout) {
			return
		}
		// The send stalled: the stream (and anything still queued on it) is
		// considered lost. The store sees the hole as missed rounds.
		l.pending = nil
	}
	pm.reroute(idx, n, u, f, payload)
}

// reroute reconnects a node to the current collector after its link broke,
// re-electing first when the collector node itself is dead. The frame that
// triggered the reroute is re-shipped on the fresh link (or ingested
// locally when this node just became the collector).
func (pm *PerfMon) reroute(idx int, n *cluster.Node, u *kernel.UCtx, f Frame, payload []byte) {
	if pm.c.Node(pm.collector).K.Crashed() {
		dead := pm.c.Node(pm.collector).Name
		next := Elect(pm.c)
		if next < 0 {
			// Nobody left to collect on: degrade to silence. The agent keeps
			// running so a later operator intervention could still reach it.
			pm.links[idx] = nil
			return
		}
		pm.collector = next
		pm.failovers++
		pm.store.MarkDown(dead)
	}
	if idx == pm.collector {
		pm.links[idx] = nil
		pm.store.Ingest(f, 0)
		return
	}
	cn := pm.c.Node(pm.collector)
	agentConn, sinkConn := tcpsim.Connect(n.Stack, cn.Stack)
	l := &link{nodeIdx: idx, agentConn: agentConn, sinkConn: sinkConn}
	pm.links[idx] = l
	pm.sinks = append(pm.sinks, pm.spawnSink(cn, l))
	l.pending = append(l.pending, payload)
	if !l.agentConn.SendTimeout(u, FrameHeaderBytes+len(payload), pm.cfg.SendTimeout) {
		// Still unreachable (e.g. the replacement died too, or a partition):
		// give up on this round; the next round retries the whole path.
		l.pending = nil
	}
}

// spawnSink starts one collector-side receiver for a link: it waits (with a
// timeout) for the fixed preamble, learns the payload length from the
// framing queue, receives the payload, decodes and ingests it. Damaged or
// desynced frames are counted and dropped, never fatal; a link that stays
// silent is diagnosed — node crashed, link replaced by failover, agent
// finished — and the sink always exits rather than blocking forever.
func (pm *PerfMon) spawnSink(n *cluster.Node, l *link) *kernel.Task {
	cfg := pm.cfg
	return n.K.Spawn("kmon-sink", func(u *kernel.UCtx) {
		node := pm.c.Node(l.nodeIdx)
		timeouts := 0
		for {
			if !l.sinkConn.RecvTimeout(u, FrameHeaderBytes, cfg.RecvTimeout) {
				timeouts++
				if pm.links[l.nodeIdx] != l {
					return // failover replaced this link; the new sink owns the stream
				}
				if node.K.Crashed() {
					pm.store.MarkDown(node.Name)
					return
				}
				if pm.agents[l.nodeIdx].Exited() && len(l.pending) == 0 {
					return // agent finished and the stream is drained
				}
				if timeouts >= cfg.PeerDownAfter {
					pm.store.MarkDown(node.Name)
					return
				}
				continue
			}
			timeouts = 0
			if len(l.pending) == 0 {
				// Framing desync: preamble bytes with no queued payload.
				pm.store.Drop(node.Name)
				continue
			}
			payload := l.pending[0]
			if !l.sinkConn.RecvTimeout(u, len(payload), cfg.RecvTimeout) {
				timeouts++
				if pm.links[l.nodeIdx] != l || node.K.Crashed() || timeouts >= cfg.PeerDownAfter {
					pm.store.Drop(node.Name)
					if node.K.Crashed() || timeouts >= cfg.PeerDownAfter {
						pm.store.MarkDown(node.Name)
					}
					return
				}
				continue // body still in flight; wait again without consuming
			}
			l.pending = l.pending[1:]
			corrupt := l.sinkConn.TakeCorrupt()
			f, err := DecodeFrame(payload)
			if corrupt || err != nil {
				// Damaged in flight or undecodable: count and drop. The hole
				// shows up as a missed round on the node.
				pm.store.Drop(node.Name)
				continue
			}
			// User-space decode + store update cost.
			u.Compute(time.Duration(len(payload)/1024+1) * cfg.ReadCostPerKB)
			pm.store.Ingest(f, FrameHeaderBytes+len(payload))
			if f.Last {
				return
			}
		}
	}, kernel.SpawnOpts{Kind: kernel.KindDaemon})
}
