// Package perfmon is the cluster-wide online monitoring pipeline: the layer
// the paper's title promises ("integrated parallel performance views") built
// on top of KTAU's per-node machinery. Each node runs a KTAUD-style agent
// (§4.5) that reads /proc/ktau on an interval, delta-encodes the kernel-wide
// profile against the previous round, and ships the frame over the simulated
// TCP network to an elected collector node. Collection traffic therefore
// flows through the same instrumented TCP path as application traffic, so
// the pipeline observes its own interference — the self-observation property
// KTAU claims.
//
// The collector maintains a bounded ring-buffer time-series store (per node
// × kernel event × {calls, incl, excl}) with configurable retention and
// downsampling, answers cluster-wide queries (top-K hottest kernel routines,
// per-node merges, time-window slices), runs online detectors (OS-noise /
// daemon interference as in Figs. 8-10, slow-node ranking), and exports
// Prometheus text, JSON lines and a human ASCII cluster view.
//
// The pipeline is fault-tolerant: agents retry transient procfs errors with
// bounded backoff and ship explicit gap frames when a round's data stays
// unreadable; sinks receive with timeouts, count-and-drop damaged frames,
// and mark a node down instead of blocking forever when it stops reporting;
// and when the collector node itself dies, agents detect the broken link,
// re-elect a live collector and reconnect — the store (held by the PerfMon,
// not the dead node) keeps every pre-crash sample.
package perfmon

import (
	"errors"
	"sync"
	"time"

	"ktau/internal/cluster"
	"ktau/internal/kernel"
	"ktau/internal/ktau"
	"ktau/internal/libktau"
	"ktau/internal/tcpsim"
)

// Config parameterises a deployment.
type Config struct {
	// Interval between collection rounds on every agent (default 100ms).
	Interval time.Duration
	// Rounds bounds each agent's collection loop (0 = run until Stop or
	// kernel shutdown). The final round is flagged so sinks drain cleanly.
	Rounds int
	// Store bounds the collector's time-series memory.
	Store StoreConfig
	// Detect configures the online detectors.
	Detect DetectConfig
	// RankPrefix identifies application processes by task-name prefix (e.g.
	// "LU.rank"); everything else except idle tasks counts as system/daemon
	// activity for the noise detector. Empty disables rank classification.
	RankPrefix string
	// ReadCostPerKB models agent-side processing cost per KiB of profile
	// data each round (default 20us/KB, as KTAUD).
	ReadCostPerKB time.Duration
	// Collector overrides the election result when >= 0 (default -1).
	Collector int
	// ReadRetries bounds how many times an agent retries a failed procfs
	// read within one round before shipping a gap frame (default 3).
	ReadRetries int
	// ReadBackoff is the sleep between procfs read retries (default
	// Interval/10).
	ReadBackoff time.Duration
	// RecvTimeout bounds each sink receive; a sink that times out checks its
	// peer's health instead of blocking forever (default 4×Interval).
	RecvTimeout time.Duration
	// SendTimeout bounds each agent's frame transmission; an expired send
	// marks the collector link broken and triggers re-election (default
	// 4×Interval).
	SendTimeout time.Duration
	// PeerDownAfter is how many consecutive receive timeouts a sink
	// tolerates before marking its node down and exiting (default 3).
	PeerDownAfter int
}

func (c *Config) defaults() {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.ReadCostPerKB <= 0 {
		c.ReadCostPerKB = 20 * time.Microsecond
	}
	if c.ReadRetries <= 0 {
		c.ReadRetries = 3
	}
	if c.ReadBackoff <= 0 {
		c.ReadBackoff = c.Interval / 10
	}
	if c.RecvTimeout <= 0 {
		c.RecvTimeout = 4 * c.Interval
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = 4 * c.Interval
	}
	if c.PeerDownAfter <= 0 {
		c.PeerDownAfter = 3
	}
	c.Store.defaults()
	c.Detect.defaults()
}

// Elect picks the collector node deterministically among live nodes: the
// node with the most CPUs wins (it absorbs the aggregation load), ties
// broken by lowest index — a stand-in for a leader election among identical
// daemons. It returns -1 when no live node exists. Liveness is judged from
// the barrier-published crash views (Kernel.CrashedSeen), so an election run
// from inside any node's window is deterministic; after crashing a node by
// hand while the cluster is quiescent, call Cluster.PublishViews before
// electing.
func Elect(c *cluster.Cluster) int {
	best := -1
	for i, n := range c.Nodes {
		if n.K.CrashedSeen() {
			continue
		}
		if best < 0 || n.K.NumCPUs() > c.Node(best).K.NumCPUs() {
			best = i
		}
	}
	return best
}

// link carries the Go-side payload queue of one agent→collector connection;
// the simulated TCP stream carries matching byte counts (the same framing
// convention mpisim uses), so the transfer is fully charged as kernel work
// on both nodes while the decoded payload rides alongside deterministically.
//
// The pending queue is pushed from the agent's node window and popped from
// the collector's, which can overlap under parallel execution — hence the
// lock. The popped values are still deterministic: a payload is pushed at
// send time, at least one wire latency (= one window barrier) before the
// sink can have received the matching preamble bytes. replaced is set and
// read only in the sink node's engine context (the agent retires a link by
// posting the flip through the runner), so the sink's exit decision cannot
// depend on worker interleaving.
type link struct {
	nodeIdx   int          // monitored node this link carries
	sinkNode  int          // collector node the sink runs on
	agentConn *tcpsim.Conn // agent-side endpoint
	sinkConn  *tcpsim.Conn // collector-side endpoint

	mu       sync.Mutex
	pending  [][]byte // encoded frames in flight, FIFO
	replaced bool     // the agent abandoned this link (failover/reconnect)
}

// push enqueues one encoded frame. The queue owns its payloads — p is copied
// out, so callers may pass a scratch buffer they will overwrite next round.
func (l *link) push(p []byte) {
	cp := append(make([]byte, 0, len(p)), p...)
	l.mu.Lock()
	l.pending = append(l.pending, cp)
	l.mu.Unlock()
}

func (l *link) peek() ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) == 0 {
		return nil, false
	}
	return l.pending[0], true
}

func (l *link) popFront() {
	l.mu.Lock()
	if len(l.pending) > 0 {
		l.pending = l.pending[1:]
	}
	l.mu.Unlock()
}

func (l *link) empty() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending) == 0
}

// clearPending discards queued payloads after a failed send; the stream
// (and anything on it) is considered lost.
func (l *link) clearPending() {
	l.mu.Lock()
	l.pending = nil
	l.mu.Unlock()
}

// retire marks the link abandoned by its agent. Runs on the sink node's
// engine.
func (l *link) retire() {
	l.mu.Lock()
	l.pending = nil
	l.replaced = true
	l.mu.Unlock()
}

func (l *link) isReplaced() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replaced
}

// PerfMon is a deployed monitoring pipeline.
type PerfMon struct {
	cfg   Config
	c     *cluster.Cluster
	store *Store
	// agents is indexed by node. agentDone is its barrier-published exit
	// view: sinks on the collector read it instead of the live task state.
	agents    []*kernel.Task
	agentDone []bool
	stopped   bool

	// mu guards the collector-side bookkeeping below. It is mutated only in
	// collector-node engine contexts (directly, or via closures posted
	// through the runner) and read back by user code once the cluster is
	// quiescent; the lock is belt-and-braces for pathological multi-crash
	// cascades.
	mu         sync.Mutex
	collector  int
	sinks      []*kernel.Task
	failovers  int
	downMarked map[string]bool
}

// Deploy elects a collector, connects every other node to it over the
// simulated network, and spawns the per-node agent daemons ("kmond") plus
// one sink task per connection on the collector. Call before launching the
// workload; drive the engine afterwards (e.g. cluster.RunUntilDone on
// Tasks()). It fails when the cluster has no live node to collect on.
func Deploy(c *cluster.Cluster, cfg Config) (*PerfMon, error) {
	cfg.defaults()
	if len(c.Nodes) == 0 {
		return nil, errors.New("perfmon: cannot deploy on an empty cluster")
	}
	// Deploy runs while the cluster is quiescent; refresh the published
	// views so the election sees any crash injected since the last barrier.
	c.PublishViews()
	collector := cfg.Collector
	if collector < 0 || collector >= len(c.Nodes) || c.Node(collector).K.CrashedSeen() {
		collector = Elect(c)
	}
	if collector < 0 {
		return nil, errors.New("perfmon: no live node to collect on")
	}
	pm := &PerfMon{
		cfg:        cfg,
		c:          c,
		store:      NewStore(cfg.Store),
		collector:  collector,
		agentDone:  make([]bool, len(c.Nodes)),
		downMarked: make(map[string]bool),
	}
	for i, n := range c.Nodes {
		if i == collector {
			// The collector monitors itself without a network hop.
			pm.agents = append(pm.agents, pm.spawnAgent(i, n, collector, nil))
			continue
		}
		agentConn, sinkConn := tcpsim.Connect(n.Stack, c.Node(collector).Stack)
		l := &link{nodeIdx: i, sinkNode: collector, agentConn: agentConn, sinkConn: sinkConn}
		pm.agents = append(pm.agents, pm.spawnAgent(i, n, collector, l))
		pm.sinks = append(pm.sinks, pm.spawnSink(c.Node(collector), l))
	}
	c.Runner.OnBarrier(pm.publishViews)
	return pm, nil
}

// publishViews refreshes the barrier-published agent-exit flags the sinks
// read. Runs at every window barrier.
func (pm *PerfMon) publishViews() {
	for i, t := range pm.agents {
		pm.agentDone[i] = t.Exited()
	}
}

// Store returns the collector's time-series store.
func (pm *PerfMon) Store() *Store { return pm.store }

// Collector returns the current collector node index (it changes when the
// elected node dies and the agents fail over).
func (pm *PerfMon) Collector() int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.collector
}

// Failovers returns how many collector re-elections have happened.
func (pm *PerfMon) Failovers() int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.failovers
}

// Config returns the deployment configuration (defaults applied).
func (pm *PerfMon) Config() Config { return pm.cfg }

// Tasks returns every task the deployment spawned (agents then sinks);
// RunUntilDone over these drains the pipeline after Stop or bounded Rounds.
// Failover spawns replacement sinks, so re-query after driving the engine.
func (pm *PerfMon) Tasks() []*kernel.Task {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	out := make([]*kernel.Task, 0, len(pm.agents)+len(pm.sinks))
	out = append(out, pm.agents...)
	out = append(out, pm.sinks...)
	return out
}

// Agents returns the per-node collection daemons (node order).
func (pm *PerfMon) Agents() []*kernel.Task { return pm.agents }

// Sinks returns the collector-side receiver tasks (including any
// replacements spawned by failover).
func (pm *PerfMon) Sinks() []*kernel.Task {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return append([]*kernel.Task(nil), pm.sinks...)
}

// Stop asks every agent to perform one final collection round (flagged
// Last) and exit; sinks exit after ingesting the final frame. Drive the
// engine afterwards to drain the pipeline.
func (pm *PerfMon) Stop() { pm.stopped = true }

// groupExcl sums exclusive cycles of one group in a snapshot delta.
func groupExcl(evs []ktau.EventDelta, g ktau.Group) int64 {
	var t int64
	for _, e := range evs {
		if e.Group == g {
			t += e.DExcl
		}
	}
	return t
}

// agentState is the delta-encoding baseline one agent carries between
// rounds. It is split out of the agent loop so the round logic is testable
// without a cluster.
type agentState struct {
	prevKW   ktau.Snapshot
	prevProc map[int]ktau.Snapshot
}

func newAgentState() *agentState {
	return &agentState{prevProc: make(map[int]ktau.Snapshot)}
}

// buildFrame delta-encodes one successfully read round against the baseline
// and advances it. PIDs absent from the current read are evicted from the
// baseline: once a process is gone from procfs it can never produce another
// delta, and keeping its snapshot would grow the map without bound under
// process churn.
func (a *agentState) buildFrame(node string, idx, round, cpus int, last bool,
	kw ktau.Snapshot, procs []ktau.Snapshot) Frame {
	f := Frame{
		Node:    node,
		NodeIdx: idx,
		Round:   round,
		CPUs:    cpus,
		FromTSC: a.prevKW.TSC,
		ToTSC:   kw.TSC,
		Last:    last,
	}
	f.Kernel = ktau.DeltaSnapshot(a.prevKW, kw).Events
	a.prevKW = kw
	next := make(map[int]ktau.Snapshot, len(procs))
	for _, ps := range procs {
		pd := ktau.DeltaSnapshot(a.prevProc[ps.PID], ps)
		next[ps.PID] = ps
		if pd.Empty() {
			continue
		}
		var ticks uint64
		if te := pd.FindDelta(TimerTickEvent); te != nil {
			ticks = te.DCalls
		}
		f.Procs = append(f.Procs, ProcDelta{
			PID:    ps.PID,
			Name:   ps.Name,
			DTotal: pd.TotalDExcl(),
			DIRQ:   groupExcl(pd.Events, ktau.GroupIRQ),
			DBH:    groupExcl(pd.Events, ktau.GroupBH),
			DSched: groupExcl(pd.Events, ktau.GroupSched),
			DTCP:   groupExcl(pd.Events, ktau.GroupTCP),
			DTicks: ticks,
		})
	}
	a.prevProc = next
	return f
}

// gapFrame builds the placeholder for a round whose data stayed unreadable.
// The baseline is left untouched, so the next successful round's deltas
// cover the whole span including this gap.
func (a *agentState) gapFrame(node string, idx, round, cpus int, last bool) Frame {
	return Frame{
		Node:    node,
		NodeIdx: idx,
		Round:   round,
		CPUs:    cpus,
		FromTSC: a.prevKW.TSC,
		ToTSC:   a.prevKW.TSC,
		Last:    last,
		Gap:     true,
	}
}

// agentRoute is one agent's private view of where its frames go. Each agent
// owns its own route — there is no shared routing table to race on — and
// re-elects from the barrier-published crash views when its link breaks.
type agentRoute struct {
	collector int   // target node; -1 when no live collector exists
	l         *link // nil when the agent ingests locally (it is the collector)
}

// spawnAgent starts the per-node collection daemon. The agent reads through
// the node's shared procfs instance (so injected procfs faults reach it),
// retries transient errors with bounded backoff, and always emits a frame
// per round — a gap frame when the data stayed unreadable — so the sink's
// Last-frame handshake cannot be skipped.
func (pm *PerfMon) spawnAgent(idx int, n *cluster.Node, collector int, l *link) *kernel.Task {
	h := libktau.Open(n.FS)
	cfg := pm.cfg
	return n.K.Spawn("kmond", func(u *kernel.UCtx) {
		st := newAgentState()
		route := &agentRoute{collector: collector, l: l}
		var encBuf []byte // frame-encode scratch, reused every round
		for round := 0; ; round++ {
			if cfg.Rounds > 0 && round >= cfg.Rounds {
				return
			}
			final := pm.stopped
			if !final {
				u.Sleep(cfg.Interval)
				final = pm.stopped // may have been stopped while sleeping
			}
			last := final || (cfg.Rounds > 0 && round == cfg.Rounds-1)

			// The session-less two-call protocol, charged to the agent
			// exactly as KTAUD charges it; transient faults are retried
			// with backoff inside the round.
			var kw ktau.Snapshot
			var procs []ktau.Snapshot
			readOK := false
			for attempt := 0; attempt < cfg.ReadRetries; attempt++ {
				if attempt > 0 {
					u.Sleep(cfg.ReadBackoff)
				}
				u.Syscall("sys_ioctl", func(kc *kernel.KCtx) { kc.Use(2 * time.Microsecond) })
				var errKW, errAll error
				kw, errKW = h.GetProfile(libktau.ScopeKernelWide, 0)
				procs, errAll = h.GetProfiles(libktau.ScopeAll, 0)
				u.Syscall("sys_read", func(kc *kernel.KCtx) { kc.Use(4 * time.Microsecond) })
				if errKW == nil && errAll == nil {
					readOK = true
					break
				}
			}

			var f Frame
			if readOK {
				f = st.buildFrame(n.Name, idx, round, u.Kernel().NumCPUs(), last, kw, procs)
			} else {
				f = st.gapFrame(n.Name, idx, round, u.Kernel().NumCPUs(), last)
			}

			encBuf = AppendFrame(encBuf[:0], f)
			payload := encBuf // link.push copies; safe to reuse next round
			if readOK {
				// User-space processing: snapshot walk + delta encode.
				readBytes := 0
				for _, s := range procs {
					readBytes += 64 + 48*len(s.Events) + 64*len(s.Atomics) + 64*len(s.Mapped)
				}
				u.Compute(time.Duration(readBytes/1024+1) * cfg.ReadCostPerKB)
			}

			pm.ship(route, idx, n, u, f, payload)
			if f.Last {
				return
			}
		}
	}, kernel.SpawnOpts{Kind: kernel.KindDaemon})
}

// retireLink tells the link's sink — in the sink's own engine context, so
// the hand-off is deterministic — that the agent abandoned it.
func (pm *PerfMon) retireLink(idx int, l *link) {
	pm.c.CrossCall(idx, l.sinkNode, l.retire)
}

// noteFailover records one collector transition on the (new) collector's
// side: first reporter marks the dead node down and bumps the count,
// followers are deduplicated. Runs in the new collector's engine context.
func (pm *PerfMon) noteFailover(dead string, newCollector int) {
	pm.mu.Lock()
	pm.collector = newCollector
	first := dead != "" && !pm.downMarked[dead]
	if first {
		pm.downMarked[dead] = true
		pm.failovers++
	}
	pm.mu.Unlock()
	if first {
		pm.store.MarkDown(dead)
	}
}

// ship delivers one frame to the agent's current collector: locally when
// this node is the collector, otherwise over the agent's link. A send that
// times out means the collector is unreachable — the agent re-elects and
// reconnects.
func (pm *PerfMon) ship(route *agentRoute, idx int, n *cluster.Node, u *kernel.UCtx, f Frame, payload []byte) {
	if route.collector == idx {
		pm.store.Ingest(f, 0)
		return
	}
	if route.l != nil {
		route.l.push(payload)
		if route.l.agentConn.SendTimeout(u, FrameHeaderBytes+len(payload), pm.cfg.SendTimeout) {
			return
		}
		// The send stalled: the stream (and anything still queued on it) is
		// considered lost. The store sees the hole as missed rounds.
		pm.retireLink(idx, route.l)
		route.l = nil
	}
	pm.reroute(route, idx, n, u, f, payload)
}

// reroute reconnects a node to a live collector after its link broke,
// re-electing first when the collector node itself is dead (judged from the
// barrier-published crash views). The frame that triggered the reroute is
// re-shipped on the fresh link (or ingested locally when this node just
// became the collector). Collector-side bookkeeping — sink spawn, failover
// accounting, marking the dead node down — is posted to the new collector's
// engine through the runner, keeping every store mutation in a collector
// context.
func (pm *PerfMon) reroute(route *agentRoute, idx int, n *cluster.Node, u *kernel.UCtx, f Frame, payload []byte) {
	dead := ""
	if route.collector < 0 || pm.c.Node(route.collector).K.CrashedSeen() {
		if route.collector >= 0 {
			dead = pm.c.Node(route.collector).Name
		}
		next := Elect(pm.c)
		if next < 0 {
			// Nobody left to collect on: degrade to silence. The agent keeps
			// running so a later operator intervention could still reach it.
			route.collector = -1
			route.l = nil
			return
		}
		route.collector = next
	}
	if route.collector == idx {
		// This node just became the collector: account for the transition
		// right here (this is the collector's engine context) and ingest
		// locally from now on.
		route.l = nil
		pm.noteFailover(dead, idx)
		pm.store.Ingest(f, 0)
		return
	}
	cn := pm.c.Node(route.collector)
	agentConn, sinkConn := tcpsim.Connect(n.Stack, cn.Stack)
	l := &link{nodeIdx: idx, sinkNode: route.collector, agentConn: agentConn, sinkConn: sinkConn}
	route.l = l
	newCollector := route.collector
	pm.c.CrossCall(idx, newCollector, func() {
		pm.noteFailover(dead, newCollector)
		sink := pm.spawnSink(cn, l)
		pm.mu.Lock()
		pm.sinks = append(pm.sinks, sink)
		pm.mu.Unlock()
	})
	l.push(payload)
	if !l.agentConn.SendTimeout(u, FrameHeaderBytes+len(payload), pm.cfg.SendTimeout) {
		// Still unreachable (e.g. the replacement died too, or a partition):
		// give up on this round; the next round retries the whole path.
		pm.c.CrossCall(idx, l.sinkNode, l.clearPending)
	}
}

// spawnSink starts one collector-side receiver for a link: it waits (with a
// timeout) for the fixed preamble, learns the payload length from the
// framing queue, receives the payload, decodes and ingests it. Damaged or
// desynced frames are counted and dropped, never fatal; a link that stays
// silent is diagnosed — node crashed, link replaced by failover, agent
// finished — and the sink always exits rather than blocking forever.
func (pm *PerfMon) spawnSink(n *cluster.Node, l *link) *kernel.Task {
	cfg := pm.cfg
	return n.K.Spawn("kmon-sink", func(u *kernel.UCtx) {
		node := pm.c.Node(l.nodeIdx)
		timeouts := 0
		for {
			if !l.sinkConn.RecvTimeout(u, FrameHeaderBytes, cfg.RecvTimeout) {
				timeouts++
				if l.isReplaced() {
					return // failover replaced this link; the new sink owns the stream
				}
				if node.K.CrashedSeen() {
					pm.store.MarkDown(node.Name)
					return
				}
				if pm.agentDone[l.nodeIdx] && l.empty() {
					return // agent finished and the stream is drained
				}
				if timeouts >= cfg.PeerDownAfter {
					pm.store.MarkDown(node.Name)
					return
				}
				continue
			}
			timeouts = 0
			payload, ok := l.peek()
			if !ok {
				// Framing desync: preamble bytes with no queued payload.
				pm.store.Drop(node.Name)
				continue
			}
			if !l.sinkConn.RecvTimeout(u, len(payload), cfg.RecvTimeout) {
				timeouts++
				if l.isReplaced() || node.K.CrashedSeen() || timeouts >= cfg.PeerDownAfter {
					pm.store.Drop(node.Name)
					if node.K.CrashedSeen() || timeouts >= cfg.PeerDownAfter {
						pm.store.MarkDown(node.Name)
					}
					return
				}
				continue // body still in flight; wait again without consuming
			}
			l.popFront()
			corrupt := l.sinkConn.TakeCorrupt()
			f, err := DecodeFrame(payload)
			if corrupt || err != nil {
				// Damaged in flight or undecodable: count and drop. The hole
				// shows up as a missed round on the node.
				pm.store.Drop(node.Name)
				continue
			}
			// User-space decode + store update cost.
			u.Compute(time.Duration(len(payload)/1024+1) * cfg.ReadCostPerKB)
			pm.store.Ingest(f, FrameHeaderBytes+len(payload))
			if f.Last {
				return
			}
		}
	}, kernel.SpawnOpts{Kind: kernel.KindDaemon})
}
