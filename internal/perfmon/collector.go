// Package perfmon is the cluster-wide online monitoring pipeline: the layer
// the paper's title promises ("integrated parallel performance views") built
// on top of KTAU's per-node machinery. Each node runs a KTAUD-style agent
// (§4.5) that reads /proc/ktau on an interval, delta-encodes the kernel-wide
// profile against the previous round, and ships the frame over the simulated
// TCP network to an elected collector node. Collection traffic therefore
// flows through the same instrumented TCP path as application traffic, so
// the pipeline observes its own interference — the self-observation property
// KTAU claims.
//
// The collector maintains a bounded ring-buffer time-series store (per node
// × kernel event × {calls, incl, excl}) with configurable retention and
// downsampling, answers cluster-wide queries (top-K hottest kernel routines,
// per-node merges, time-window slices), runs online detectors (OS-noise /
// daemon interference as in Figs. 8-10, slow-node ranking), and exports
// Prometheus text, JSON lines and a human ASCII cluster view.
package perfmon

import (
	"time"

	"ktau/internal/cluster"
	"ktau/internal/kernel"
	"ktau/internal/ktau"
	"ktau/internal/libktau"
	"ktau/internal/procfs"
	"ktau/internal/tcpsim"
)

// Config parameterises a deployment.
type Config struct {
	// Interval between collection rounds on every agent (default 100ms).
	Interval time.Duration
	// Rounds bounds each agent's collection loop (0 = run until Stop or
	// kernel shutdown). The final round is flagged so sinks drain cleanly.
	Rounds int
	// Store bounds the collector's time-series memory.
	Store StoreConfig
	// Detect configures the online detectors.
	Detect DetectConfig
	// RankPrefix identifies application processes by task-name prefix (e.g.
	// "LU.rank"); everything else except idle tasks counts as system/daemon
	// activity for the noise detector. Empty disables rank classification.
	RankPrefix string
	// ReadCostPerKB models agent-side processing cost per KiB of profile
	// data each round (default 20us/KB, as KTAUD).
	ReadCostPerKB time.Duration
	// Collector overrides the election result when >= 0 (default -1).
	Collector int
}

func (c *Config) defaults() {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.ReadCostPerKB <= 0 {
		c.ReadCostPerKB = 20 * time.Microsecond
	}
	c.Store.defaults()
	c.Detect.defaults()
}

// Elect picks the collector node deterministically: the node with the most
// CPUs wins (it absorbs the aggregation load), ties broken by lowest index —
// a stand-in for a leader election among identical daemons.
func Elect(c *cluster.Cluster) int {
	best := 0
	for i, n := range c.Nodes {
		if n.K.NumCPUs() > c.Node(best).K.NumCPUs() {
			best = i
		}
	}
	return best
}

// link carries the Go-side payload queue of one agent→collector connection;
// the simulated TCP stream carries matching byte counts (the same framing
// convention mpisim uses), so the transfer is fully charged as kernel work
// on both nodes while the decoded payload rides alongside deterministically.
type link struct {
	agentConn *tcpsim.Conn // agent-side endpoint
	sinkConn  *tcpsim.Conn // collector-side endpoint
	pending   [][]byte     // encoded frames in flight, FIFO
}

// PerfMon is a deployed monitoring pipeline.
type PerfMon struct {
	cfg       Config
	c         *cluster.Cluster
	store     *Store
	collector int
	agents    []*kernel.Task
	sinks     []*kernel.Task
	stopped   bool
}

// Deploy elects a collector, connects every other node to it over the
// simulated network, and spawns the per-node agent daemons ("kmond") plus
// one sink task per connection on the collector. Call before launching the
// workload; drive the engine afterwards (e.g. cluster.RunUntilDone on
// Tasks()).
func Deploy(c *cluster.Cluster, cfg Config) *PerfMon {
	cfg.defaults()
	collector := cfg.Collector
	if collector < 0 || collector >= len(c.Nodes) {
		collector = Elect(c)
	}
	pm := &PerfMon{
		cfg:       cfg,
		c:         c,
		store:     NewStore(cfg.Store),
		collector: collector,
	}
	for i, n := range c.Nodes {
		if i == collector {
			// The collector monitors itself without a network hop.
			pm.agents = append(pm.agents, pm.spawnAgent(i, n, nil))
			continue
		}
		agentConn, sinkConn := tcpsim.Connect(n.Stack, c.Node(collector).Stack)
		l := &link{agentConn: agentConn, sinkConn: sinkConn}
		pm.agents = append(pm.agents, pm.spawnAgent(i, n, l))
		pm.sinks = append(pm.sinks, pm.spawnSink(c.Node(collector), l))
	}
	return pm
}

// Store returns the collector's time-series store.
func (pm *PerfMon) Store() *Store { return pm.store }

// Collector returns the elected collector node index.
func (pm *PerfMon) Collector() int { return pm.collector }

// Config returns the deployment configuration (defaults applied).
func (pm *PerfMon) Config() Config { return pm.cfg }

// Tasks returns every task the deployment spawned (agents then sinks);
// RunUntilDone over these drains the pipeline after Stop or bounded Rounds.
func (pm *PerfMon) Tasks() []*kernel.Task {
	out := make([]*kernel.Task, 0, len(pm.agents)+len(pm.sinks))
	out = append(out, pm.agents...)
	out = append(out, pm.sinks...)
	return out
}

// Agents returns the per-node collection daemons (node order).
func (pm *PerfMon) Agents() []*kernel.Task { return pm.agents }

// Sinks returns the collector-side receiver tasks.
func (pm *PerfMon) Sinks() []*kernel.Task { return pm.sinks }

// Stop asks every agent to perform one final collection round (flagged
// Last) and exit; sinks exit after ingesting the final frame. Drive the
// engine afterwards to drain the pipeline.
func (pm *PerfMon) Stop() { pm.stopped = true }

// groupExcl sums exclusive cycles of one group in a snapshot delta.
func groupExcl(evs []ktau.EventDelta, g ktau.Group) int64 {
	var t int64
	for _, e := range evs {
		if e.Group == g {
			t += e.DExcl
		}
	}
	return t
}

// spawnAgent starts the per-node collection daemon. l == nil means the node
// is the collector: frames are ingested locally instead of shipped.
func (pm *PerfMon) spawnAgent(idx int, n *cluster.Node, l *link) *kernel.Task {
	fs := procfs.New(n.K.Ktau())
	h := libktau.Open(fs)
	cfg := pm.cfg
	return n.K.Spawn("kmond", func(u *kernel.UCtx) {
		var prevKW ktau.Snapshot
		prevProc := map[int]ktau.Snapshot{}
		for round := 0; ; round++ {
			if cfg.Rounds > 0 && round >= cfg.Rounds {
				return
			}
			final := pm.stopped
			if !final {
				u.Sleep(cfg.Interval)
				final = pm.stopped // may have been stopped while sleeping
			}

			// The session-less two-call protocol, charged to the agent
			// exactly as KTAUD charges it.
			u.Syscall("sys_ioctl", func(kc *kernel.KCtx) { kc.Use(2 * time.Microsecond) })
			kw, errKW := h.GetProfile(libktau.ScopeKernelWide, 0)
			procs, errAll := h.GetProfiles(libktau.ScopeAll, 0)
			u.Syscall("sys_read", func(kc *kernel.KCtx) { kc.Use(4 * time.Microsecond) })
			if errKW != nil || errAll != nil {
				continue
			}

			f := Frame{
				Node:    n.Name,
				NodeIdx: idx,
				Round:   round,
				CPUs:    u.Kernel().NumCPUs(),
				FromTSC: prevKW.TSC,
				ToTSC:   kw.TSC,
				Last:    final || (cfg.Rounds > 0 && round == cfg.Rounds-1),
			}
			f.Kernel = ktau.DeltaSnapshot(prevKW, kw).Events
			prevKW = kw
			for _, ps := range procs {
				pd := ktau.DeltaSnapshot(prevProc[ps.PID], ps)
				prevProc[ps.PID] = ps
				if pd.Empty() {
					continue
				}
				var ticks uint64
				if te := pd.FindDelta(TimerTickEvent); te != nil {
					ticks = te.DCalls
				}
				f.Procs = append(f.Procs, ProcDelta{
					PID:    ps.PID,
					Name:   ps.Name,
					DTotal: pd.TotalDExcl(),
					DIRQ:   groupExcl(pd.Events, ktau.GroupIRQ),
					DBH:    groupExcl(pd.Events, ktau.GroupBH),
					DSched: groupExcl(pd.Events, ktau.GroupSched),
					DTCP:   groupExcl(pd.Events, ktau.GroupTCP),
					DTicks: ticks,
				})
			}

			payload := EncodeFrame(f)
			// User-space processing: snapshot walk + delta encode.
			readBytes := 0
			for _, s := range procs {
				readBytes += 64 + 48*len(s.Events) + 64*len(s.Atomics) + 64*len(s.Mapped)
			}
			u.Compute(time.Duration(readBytes/1024+1) * cfg.ReadCostPerKB)

			if l == nil {
				// Collector-local round: no network hop.
				pm.store.Ingest(f, 0)
			} else {
				l.pending = append(l.pending, payload)
				l.agentConn.Send(u, FrameHeaderBytes+len(payload))
			}
			if f.Last {
				return
			}
		}
	}, kernel.SpawnOpts{Kind: kernel.KindDaemon})
}

// spawnSink starts one collector-side receiver for a link: it blocks in
// tcp_recvmsg for the fixed preamble, learns the payload length from the
// framing queue, receives the payload, decodes and ingests it.
func (pm *PerfMon) spawnSink(n *cluster.Node, l *link) *kernel.Task {
	cfg := pm.cfg
	return n.K.Spawn("kmon-sink", func(u *kernel.UCtx) {
		for {
			l.sinkConn.Recv(u, FrameHeaderBytes)
			if len(l.pending) == 0 {
				panic("perfmon: frame preamble arrived with no queued payload (framing bug)")
			}
			payload := l.pending[0]
			l.pending = l.pending[1:]
			l.sinkConn.Recv(u, len(payload))
			f, err := DecodeFrame(payload)
			if err != nil {
				panic("perfmon: undecodable frame: " + err.Error())
			}
			// User-space decode + store update cost.
			u.Compute(time.Duration(len(payload)/1024+1) * cfg.ReadCostPerKB)
			pm.store.Ingest(f, FrameHeaderBytes+len(payload))
			if f.Last {
				return
			}
		}
	}, kernel.SpawnOpts{Kind: kernel.KindDaemon})
}
