package perfmon

import (
	"fmt"
	"testing"

	"ktau/internal/ktau"
)

// feedFrame builds a simple one-event-per-call frame for store tests.
func feedFrame(node string, idx, round int, event string, g ktau.Group, calls uint64, excl int64) Frame {
	return Frame{
		Node: node, NodeIdx: idx, Round: round, CPUs: 2,
		FromTSC: int64(round) * 100, ToTSC: int64(round+1) * 100,
		Kernel: []ktau.EventDelta{{Name: event, Group: g, DCalls: calls, DIncl: excl, DExcl: excl}},
	}
}

func TestStoreTotalsAndTopK(t *testing.T) {
	st := NewStore(StoreConfig{})
	for round := 0; round < 5; round++ {
		st.Ingest(feedFrame("a", 0, round, "tcp_v4_rcv", ktau.GroupTCP, 10, 1000), 64)
		st.Ingest(feedFrame("b", 1, round, "tcp_v4_rcv", ktau.GroupTCP, 5, 400), 64)
		st.Ingest(feedFrame("b", 1, round, "do_IRQ[timer]", ktau.GroupIRQ, 2, 50), 0)
	}
	if got := st.NodeNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("NodeNames = %v", got)
	}
	if st.Frames() != 15 {
		t.Fatalf("Frames = %d, want 15", st.Frames())
	}
	tot, ok := st.Total("a", "tcp_v4_rcv")
	if !ok || tot.Calls != 50 || tot.Excl != 5000 {
		t.Fatalf("Total(a, tcp_v4_rcv) = %+v ok=%v", tot, ok)
	}
	top := st.TopK(0, 0)
	if len(top) != 2 {
		t.Fatalf("TopK len = %d, want 2", len(top))
	}
	if top[0].Name != "tcp_v4_rcv" || top[0].Excl != 7000 || top[0].Calls != 75 || top[0].Nodes != 2 {
		t.Fatalf("TopK[0] = %+v", top[0])
	}
	if top[1].Name != "do_IRQ[timer]" || top[1].Excl != 250 {
		t.Fatalf("TopK[1] = %+v", top[1])
	}
	if got := st.TopK(1, 0); len(got) != 1 || got[0].Name != "tcp_v4_rcv" {
		t.Fatalf("TopK(1) = %+v", got)
	}
	// Wire accounting: node a shipped 5 frames of 64 bytes.
	if info := st.Nodes()[0]; info.Bytes != 320 || info.Rounds != 5 || info.CPUs != 2 {
		t.Fatalf("Nodes()[0] = %+v", info)
	}
}

func TestStoreWindowSlices(t *testing.T) {
	st := NewStore(StoreConfig{})
	for round := 0; round < 10; round++ {
		st.Ingest(feedFrame("a", 0, round, "schedule", ktau.GroupSched, 1, int64(round+1)), 0)
	}
	all := st.Series("a", "schedule", 0)
	if len(all) != 10 {
		t.Fatalf("Series(all) len = %d", len(all))
	}
	last3 := st.Series("a", "schedule", 3)
	if len(last3) != 3 || last3[0].Round != 7 || last3[2].Round != 9 {
		t.Fatalf("Series(3) = %+v", last3)
	}
	// Window totals: last 3 rounds carry 8+9+10 exclusive cycles.
	nw := st.NodeWindow("a", 3)
	if len(nw) != 1 || nw[0].Excl != 27 {
		t.Fatalf("NodeWindow(3) = %+v", nw)
	}
	if w := st.WallCycles("a", 3); w != 300 {
		t.Fatalf("WallCycles(3) = %d, want 300", w)
	}
	if w := st.WallCycles("a", 0); w != 1000 {
		t.Fatalf("WallCycles(0) = %d, want 1000", w)
	}
}

func TestRingWraparound(t *testing.T) {
	r := newRing[int](4)
	for i := 0; i < 4; i++ {
		r.push(i)
	}
	// Exactly at capacity: everything retained, oldest first.
	if got := r.items(); r.len() != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("at capacity: len=%d items=%v", r.len(), got)
	}
	// One past capacity: only the oldest element is evicted and iteration
	// order stays oldest-first across the wrap point.
	r.push(4)
	got := r.items()
	if r.len() != 4 || len(got) != 4 {
		t.Fatalf("past capacity: len=%d items=%v", r.len(), got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("past capacity items = %v, want [1 2 3 4]", got)
		}
	}
}

func TestStoreRetentionBoundary(t *testing.T) {
	st := NewStore(StoreConfig{Retention: 4})
	// Exactly Retention rounds: all retained, none evicted.
	for round := 0; round < 4; round++ {
		st.Ingest(feedFrame("a", 0, round, "schedule", ktau.GroupSched, 1, 10), 0)
	}
	if got := st.Series("a", "schedule", 0); len(got) != 4 || got[0].Round != 0 {
		t.Fatalf("at Retention: %+v", got)
	}
	// One more round evicts exactly the oldest sample and its mark.
	st.Ingest(feedFrame("a", 0, 4, "schedule", ktau.GroupSched, 1, 10), 0)
	got := st.Series("a", "schedule", 0)
	if len(got) != 4 || got[0].Round != 1 || got[3].Round != 4 {
		t.Fatalf("at Retention+1: %+v", got)
	}
	if marks := st.Marks("a"); len(marks) != 4 || marks[0].Round != 1 {
		t.Fatalf("marks at Retention+1 = %+v", marks)
	}
}

func TestStoreRetentionEviction(t *testing.T) {
	st := NewStore(StoreConfig{Retention: 4})
	for round := 0; round < 10; round++ {
		st.Ingest(feedFrame("a", 0, round, "schedule", ktau.GroupSched, 1, 10), 0)
	}
	got := st.Series("a", "schedule", 0)
	if len(got) != 4 || got[0].Round != 6 || got[3].Round != 9 {
		t.Fatalf("retained series = %+v", got)
	}
	// Cumulative totals survive eviction.
	tot, _ := st.Total("a", "schedule")
	if tot.Calls != 10 || tot.Excl != 100 {
		t.Fatalf("Total after eviction = %+v", tot)
	}
	if marks := st.Marks("a"); len(marks) != 4 || marks[0].Round != 6 {
		t.Fatalf("Marks = %+v", marks)
	}
}

func TestStoreDownsampling(t *testing.T) {
	st := NewStore(StoreConfig{Retention: 8, Downsample: 4})
	for round := 0; round < 8; round++ {
		st.Ingest(feedFrame("a", 0, round, "schedule", ktau.GroupSched, 1, 10), 0)
	}
	got := st.Series("a", "schedule", 0)
	if len(got) != 2 {
		t.Fatalf("downsampled series len = %d, want 2", len(got))
	}
	if got[0].Round != 3 || got[0].DCalls != 4 || got[0].DExcl != 40 {
		t.Fatalf("sample 0 = %+v", got[0])
	}
	if got[1].Round != 7 || got[1].DExcl != 40 {
		t.Fatalf("sample 1 = %+v", got[1])
	}
	marks := st.Marks("a")
	if len(marks) != 2 || marks[0].FromTSC != 0 || marks[0].ToTSC != 400 {
		t.Fatalf("marks = %+v", marks)
	}
	// A flagged-last frame flushes a partial accumulation.
	f := feedFrame("a", 0, 8, "schedule", ktau.GroupSched, 1, 10)
	f.Last = true
	st.Ingest(f, 0)
	if got := st.Series("a", "schedule", 0); len(got) != 3 || got[2].DCalls != 1 {
		t.Fatalf("after Last flush: %+v", got)
	}
}

func TestStoreDownsampleBoundary(t *testing.T) {
	st := NewStore(StoreConfig{Downsample: 3})
	// Two rounds accumulate invisibly: no sample or mark is stored until the
	// downsample boundary is reached.
	for round := 0; round < 2; round++ {
		st.Ingest(feedFrame("a", 0, round, "schedule", ktau.GroupSched, 1, 10), 0)
	}
	if got := st.Series("a", "schedule", 0); len(got) != 0 {
		t.Fatalf("partial accumulation visible: %+v", got)
	}
	if marks := st.Marks("a"); len(marks) != 0 {
		t.Fatalf("partial marks visible: %+v", marks)
	}
	// The third round completes the sample: one stored point carrying all
	// three rounds, with the mark spanning the whole accumulated window.
	st.Ingest(feedFrame("a", 0, 2, "schedule", ktau.GroupSched, 1, 10), 0)
	got := st.Series("a", "schedule", 0)
	if len(got) != 1 || got[0].Round != 2 || got[0].DCalls != 3 || got[0].DExcl != 30 {
		t.Fatalf("after boundary: %+v", got)
	}
	if marks := st.Marks("a"); len(marks) != 1 || marks[0].FromTSC != 0 || marks[0].ToTSC != 300 {
		t.Fatalf("marks after boundary: %+v", marks)
	}
}

func TestStoreAbsoluteReset(t *testing.T) {
	st := NewStore(StoreConfig{})
	st.Ingest(feedFrame("a", 0, 0, "schedule", ktau.GroupSched, 100, 5000), 0)
	f := feedFrame("a", 0, 1, "schedule", ktau.GroupSched, 3, 60)
	f.Kernel[0].Absolute = true // the node's counters were reset
	st.Ingest(f, 0)
	tot, _ := st.Total("a", "schedule")
	if tot.Calls != 3 || tot.Excl != 60 {
		t.Fatalf("Total after reset = %+v, want fresh 3/60", tot)
	}
}

func TestStoreProcWindow(t *testing.T) {
	st := NewStore(StoreConfig{})
	for round := 0; round < 4; round++ {
		f := Frame{
			Node: "a", Round: round, CPUs: 1,
			FromTSC: int64(round) * 100, ToTSC: int64(round+1) * 100,
			Procs: []ProcDelta{
				{PID: 9, Name: "crond", DTotal: 100, DIRQ: 40, DSched: 60},
				{PID: 4, Name: "LU.rank2", DTotal: 10, DIRQ: 4, DBH: 2, DSched: 4},
			},
		}
		st.Ingest(f, 0)
	}
	got := st.ProcWindow("a", 2)
	if len(got) != 2 {
		t.Fatalf("ProcWindow len = %d", len(got))
	}
	if got[0].PID != 4 || got[0].DTotal != 20 || got[0].DIRQ != 8 {
		t.Fatalf("ProcWindow[0] = %+v", got[0])
	}
	if got[1].PID != 9 || got[1].DTotal != 200 || got[1].DSched != 120 {
		t.Fatalf("ProcWindow[1] = %+v", got[1])
	}
}

func TestStoreUnknownNodeQueriesAreNil(t *testing.T) {
	st := NewStore(StoreConfig{})
	if st.Totals("ghost") != nil || st.Series("ghost", "x", 0) != nil ||
		st.NodeWindow("ghost", 0) != nil || st.ProcWindow("ghost", 0) != nil ||
		st.Marks("ghost") != nil || st.WallCycles("ghost", 0) != 0 {
		t.Fatal("unknown-node queries must return empty results")
	}
	if _, ok := st.Total("ghost", "x"); ok {
		t.Fatal("Total on unknown node reported ok")
	}
}

func TestDetectNoiseFlagsOutlier(t *testing.T) {
	st := NewStore(StoreConfig{})
	// Eight 2-CPU nodes with 10000-cycle rounds and 100 timer ticks per
	// round, so one tick samples 10000*2/100 = 200 cycles of occupancy. One
	// node (node5) hosts a hot daemon absorbing 20 ticks per round; every
	// node hosts one rank with mild interference.
	for idx := 0; idx < 8; idx++ {
		node := fmt.Sprintf("node%d", idx)
		for round := 0; round < 5; round++ {
			f := Frame{
				Node: node, NodeIdx: idx, Round: round, CPUs: 2,
				FromTSC: int64(round) * 10000, ToTSC: int64(round+1) * 10000,
				Kernel: []ktau.EventDelta{
					{Name: TimerTickEvent, Group: ktau.GroupIRQ, DCalls: 100, DIncl: 200, DExcl: 200},
				},
				Procs: []ProcDelta{
					{PID: 100 + idx, Name: "app.rank" + fmt.Sprint(idx), DTotal: 12, DIRQ: 4, DBH: 2, DSched: 6, DTicks: 30},
					{PID: 1, Name: "swapper/0", DTotal: 500, DIRQ: 500, DTicks: 50}, // idle: ignored
				},
			}
			if idx == 5 {
				f.Procs = append(f.Procs, ProcDelta{PID: 66, Name: "overhead", DTotal: 400, DIRQ: 300, DTicks: 20})
			}
			st.Ingest(f, 0)
		}
	}
	rep := st.DetectNoise(DetectConfig{}, "app.rank")
	if len(rep.Flagged) != 1 || rep.Flagged[0] != "node5" {
		t.Fatalf("Flagged = %v, want [node5]", rep.Flagged)
	}
	nn := rep.Nodes[5]
	// 100 ticks at 200 cycles each: the daemon stole an estimated 20000
	// cycles of the node's 100000-cycle capacity.
	if !nn.Flagged || nn.Daemon != 20000 {
		t.Fatalf("node5 = %+v", nn)
	}
	if nn.Share < 0.20 || nn.Share > 0.21 { // (20000+30)/100000
		t.Fatalf("node5 share = %v", nn.Share)
	}
	if len(nn.TopDaemons) != 1 || nn.TopDaemons[0].Name != "overhead" || nn.TopDaemons[0].Ticks != 100 {
		t.Fatalf("node5 TopDaemons = %+v", nn.TopDaemons)
	}
	if len(nn.Ranks) != 1 || nn.Ranks[0].Name != "app.rank5" || nn.Ranks[0].Interference != 30 {
		t.Fatalf("node5 Ranks = %+v", nn.Ranks)
	}
	// Quiet node: noise is rank interference only; rank and idle tick
	// absorption contribute nothing.
	q := rep.Nodes[0]
	if q.Flagged || q.Noise != 30 || q.Daemon != 0 {
		t.Fatalf("node0 = %+v", q)
	}
}

func TestRankImbalance(t *testing.T) {
	st := NewStore(StoreConfig{})
	// One-CPU nodes, 1000-cycle window, 10 ticks → 100 cycles per tick.
	ticks := []uint64{2, 2, 8, 2}
	for idx, tk := range ticks {
		node := fmt.Sprintf("node%d", idx)
		st.Ingest(Frame{
			Node: node, NodeIdx: idx, Round: 0, CPUs: 1, ToTSC: 1000,
			Kernel: []ktau.EventDelta{
				{Name: TimerTickEvent, Group: ktau.GroupIRQ, DCalls: 10, DIncl: 20, DExcl: 20},
			},
			Procs: []ProcDelta{{PID: 10 + idx, Name: fmt.Sprintf("app.rank%d", idx), DTotal: 30, DTicks: tk}},
		}, 0)
	}
	got := st.RankImbalance(0, "app.rank")
	if len(got) != 4 {
		t.Fatalf("RankImbalance len = %d", len(got))
	}
	if got[0].Name != "app.rank2" || got[0].CPUCycles != 800 {
		t.Fatalf("heaviest = %+v", got[0])
	}
	if got[0].Ratio < 2.28 || got[0].Ratio > 2.29 { // 800 / 350
		t.Fatalf("heaviest ratio = %v", got[0].Ratio)
	}
	if st.RankImbalance(0, "") != nil {
		t.Fatal("empty prefix must disable the ranking")
	}
}

func TestStoreRoundsOverlapping(t *testing.T) {
	st := NewStore(StoreConfig{})
	for round := 0; round < 10; round++ {
		st.Ingest(feedFrame("a", 0, round, "schedule", ktau.GroupSched, 1, int64(round+1)), 0)
	}
	// feedFrame stamps round r as [r*100, (r+1)*100].
	cases := []struct {
		wins [][2]int64
		want []int
	}{
		{nil, nil},
		{[][2]int64{{250, 260}}, []int{2}},
		{[][2]int64{{250, 410}}, []int{2, 3, 4}},
		{[][2]int64{{50, 60}, {850, 999}}, []int{0, 8, 9}},
		{[][2]int64{{100, 200}}, []int{0, 1, 2}}, // inclusive boundaries
		{[][2]int64{{5000, 6000}}, nil},
	}
	for i, c := range cases {
		got := st.RoundsOverlapping("a", c.wins)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: rounds = %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: rounds = %v, want %v", i, got, c.want)
			}
		}
	}
}

func TestStoreRoundSetQueries(t *testing.T) {
	st := NewStore(StoreConfig{})
	for round := 0; round < 6; round++ {
		f := feedFrame("a", 0, round, "schedule", ktau.GroupSched, 1, 100)
		f.Kernel = append(f.Kernel, ktau.EventDelta{
			Name: "net_rx_action", Group: ktau.GroupBH, DCalls: 2, DIncl: 50, DExcl: 50,
		})
		f.Procs = []ProcDelta{
			{PID: 1, Name: "daemon", DTotal: 10, DSched: 5, DTicks: 3},
			{PID: 2, Name: "rank", DTotal: 20, DSched: 1, DTicks: 1},
		}
		st.Ingest(f, 0)
	}
	rounds := []int{1, 3, 4}

	evs := st.NodeWindowRounds("a", rounds)
	if len(evs) != 2 {
		t.Fatalf("NodeWindowRounds len = %d, want 2", len(evs))
	}
	// Sorted hottest-first: schedule 3*100 over net_rx_action 3*50.
	if evs[0].Name != "schedule" || evs[0].Excl != 300 || evs[0].Calls != 3 {
		t.Fatalf("evs[0] = %+v", evs[0])
	}
	if evs[1].Name != "net_rx_action" || evs[1].Excl != 150 {
		t.Fatalf("evs[1] = %+v", evs[1])
	}

	procs := st.ProcWindowRounds("a", rounds)
	if len(procs) != 2 || procs[0].PID != 1 || procs[0].DTicks != 9 || procs[1].DTotal != 60 {
		t.Fatalf("ProcWindowRounds = %+v", procs)
	}

	if w := st.WallCyclesRounds("a", rounds); w != 300 {
		t.Fatalf("WallCyclesRounds = %d, want 300", w)
	}

	// The round-set queries must agree with the window queries when the set
	// covers everything retained.
	all := st.RoundsOverlapping("a", [][2]int64{{0, 1 << 40}})
	if len(all) != 6 {
		t.Fatalf("all rounds = %v", all)
	}
	evAll := st.NodeWindowRounds("a", all)
	evWin := st.NodeWindow("a", 0)
	if len(evAll) != len(evWin) || evAll[0].Excl != evWin[0].Excl {
		t.Fatalf("round-set vs window disagree: %+v vs %+v", evAll, evWin)
	}
	if st.WallCyclesRounds("a", all) != st.WallCycles("a", 0) {
		t.Fatal("WallCyclesRounds(all) != WallCycles(0)")
	}
}
