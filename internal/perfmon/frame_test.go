package perfmon

import (
	"reflect"
	"testing"

	"ktau/internal/ktau"
)

func sampleFrame() Frame {
	return Frame{
		Node:    "node3",
		NodeIdx: 3,
		Round:   7,
		CPUs:    2,
		FromTSC: 1000,
		ToTSC:   2500,
		Last:    true,
		Kernel: []ktau.EventDelta{
			{Name: "do_IRQ[timer]", Group: ktau.GroupIRQ, DCalls: 12, DIncl: 480, DExcl: 480},
			{Name: "schedule", Group: ktau.GroupSched, Absolute: true, DCalls: 3, DIncl: 90, DExcl: 90},
		},
		Procs: []ProcDelta{
			{PID: 42, Name: "LU.rank0", DTotal: 700, DIRQ: 300, DBH: 100, DSched: 300, DTCP: 0, DTicks: 9},
			{PID: 99, Name: "kjournald", DTotal: 50, DSched: 50},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	want := sampleFrame()
	got, err := DecodeFrame(EncodeFrame(want))
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestFrameRoundTripEmpty(t *testing.T) {
	want := Frame{Node: "n", Round: 0}
	got, err := DecodeFrame(EncodeFrame(want))
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestFrameDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeFrame([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Fatal("bad magic accepted")
	}
	blob := EncodeFrame(sampleFrame())
	for _, cut := range []int{len(blob) - 1, len(blob) / 2, 5} {
		if _, err := DecodeFrame(blob[:cut]); err == nil {
			t.Fatalf("truncated frame (%d of %d bytes) accepted", cut, len(blob))
		}
	}
}
