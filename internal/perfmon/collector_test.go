package perfmon

import (
	"testing"

	"ktau/internal/cluster"
	"ktau/internal/ktau"
)

// procSnap builds a one-event process snapshot for agent-state tests.
func procSnap(pid int, name string, tsc int64, calls uint64) ktau.Snapshot {
	return ktau.Snapshot{
		PID: pid, Name: name, TSC: tsc,
		Events: []ktau.EventSnap{{
			ID: 1, Name: "schedule", Group: ktau.GroupSched,
			Calls: calls, Incl: int64(calls) * 10, Excl: int64(calls) * 10,
		}},
	}
}

func TestAgentStateEvictsDeadPIDs(t *testing.T) {
	a := newAgentState()
	kw := procSnap(ktau.KernelWidePID, "kernel", 100, 4)

	f := a.buildFrame("n", 0, 0, 2, false, kw,
		[]ktau.Snapshot{procSnap(1, "one", 100, 2), procSnap(2, "two", 100, 3)})
	if len(f.Procs) != 2 || len(a.prevProc) != 2 {
		t.Fatalf("round 0: %d proc deltas, %d baselines", len(f.Procs), len(a.prevProc))
	}

	// PID 1 exits between rounds: its baseline must be evicted, not retained
	// forever (the churn leak).
	kw = procSnap(ktau.KernelWidePID, "kernel", 200, 8)
	f = a.buildFrame("n", 0, 1, 2, false, kw,
		[]ktau.Snapshot{procSnap(2, "two", 200, 5)})
	if len(a.prevProc) != 1 {
		t.Fatalf("round 1: baseline kept %d entries, want 1", len(a.prevProc))
	}
	if _, stale := a.prevProc[1]; stale {
		t.Fatal("round 1: exited PID 1 still in the baseline")
	}
	if len(f.Procs) != 1 || f.Procs[0].PID != 2 || f.Procs[0].DTotal != 20 {
		t.Fatalf("round 1 deltas = %+v", f.Procs)
	}

	// A new process reusing PID 1 starts from a fresh (zero) baseline.
	kw = procSnap(ktau.KernelWidePID, "kernel", 300, 12)
	f = a.buildFrame("n", 0, 2, 2, false, kw,
		[]ktau.Snapshot{procSnap(1, "reborn", 300, 4), procSnap(2, "two", 300, 5)})
	if len(a.prevProc) != 2 {
		t.Fatalf("round 2: baseline has %d entries, want 2", len(a.prevProc))
	}
	if len(f.Procs) != 1 || f.Procs[0].PID != 1 || f.Procs[0].DTotal != 40 {
		t.Fatalf("round 2 deltas = %+v (want full values for reborn PID 1 only)", f.Procs)
	}
}

func TestAgentStateGapFrameLeavesBaseline(t *testing.T) {
	a := newAgentState()
	kw0 := procSnap(ktau.KernelWidePID, "kernel", 100, 4)
	a.buildFrame("n", 0, 0, 2, false, kw0, nil)

	g := a.gapFrame("n", 0, 1, 2, false)
	if !g.Gap || g.FromTSC != 100 || g.ToTSC != 100 || len(g.Kernel) != 0 {
		t.Fatalf("gap frame = %+v", g)
	}

	// The next successful read's deltas cover the whole span including the
	// gap round, because the baseline was not advanced.
	kw2 := procSnap(ktau.KernelWidePID, "kernel", 300, 10)
	f := a.buildFrame("n", 0, 2, 2, false, kw2, nil)
	if f.FromTSC != 100 || f.ToTSC != 300 {
		t.Fatalf("post-gap window = [%d,%d], want [100,300]", f.FromTSC, f.ToTSC)
	}
	if d := f.Kernel[0].DCalls; d != 6 {
		t.Fatalf("post-gap DCalls = %d, want 6 (covering the gap)", d)
	}
}

func TestDeployRejectsEmptyCluster(t *testing.T) {
	if _, err := Deploy(&cluster.Cluster{}, Config{}); err == nil {
		t.Fatal("Deploy on an empty cluster did not error")
	}
}

func TestElectSkipsCrashedNodes(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: cluster.UniformNodes("n", 3), Seed: 1})
	defer c.Shutdown()
	if got := Elect(c); got != 0 {
		t.Fatalf("Elect = %d, want 0", got)
	}
	c.Node(0).K.Crash()
	c.PublishViews()
	if got := Elect(c); got != 1 {
		t.Fatalf("Elect with node 0 crashed = %d, want 1", got)
	}
	c.Node(1).K.Crash()
	c.Node(2).K.Crash()
	c.PublishViews()
	if got := Elect(c); got != -1 {
		t.Fatalf("Elect with all nodes crashed = %d, want -1", got)
	}
	if _, err := Deploy(c, Config{}); err == nil {
		t.Fatal("Deploy with no live node did not error")
	}
}
