// Package analysis provides the statistical and presentation primitives the
// experiment harness uses to regenerate the paper's tables and figures:
// cumulative distribution functions (Figs. 5, 6, 8, 9, 10), histograms
// (Fig. 3), ParaProf-style text bar charts (Figs. 2, 4, 7) and aligned
// tables (Tables 2, 3, 4).
package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct{ X, Y float64 }

// CDF returns the empirical cumulative distribution of the samples: points
// (x_i, i/n) with x ascending — exactly the "% MPI Ranks" vs value curves of
// the paper's figures.
func CDF(samples []float64) []Point {
	if len(samples) == 0 {
		return nil
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	out := make([]Point, len(s))
	n := float64(len(s))
	for i, x := range s {
		out[i] = Point{X: x, Y: float64(i+1) / n}
	}
	return out
}

// Quantile returns the q-quantile (0..1) of the samples (linear
// interpolation between order statistics).
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Std returns the population standard deviation.
func Std(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	m := Mean(samples)
	var acc float64
	for _, v := range samples {
		acc += (v - m) * (v - m)
	}
	return math.Sqrt(acc / float64(len(samples)))
}

// Min returns the smallest sample.
func Min(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	m := samples[0]
	for _, v := range samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample.
func Max(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	m := samples[0]
	for _, v := range samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// PercentDiff returns 100*(v-base)/base.
func PercentDiff(v, base float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return 100 * (v - base) / base
}

// Histogram bins samples into equal-width bins over [min, max].
type Histogram struct {
	Lo, Hi, Width float64
	Counts        []int
}

// NewHistogram builds a histogram with the given bin count.
func NewHistogram(samples []float64, bins int) Histogram {
	if bins <= 0 || len(samples) == 0 {
		return Histogram{}
	}
	lo, hi := Min(samples), Max(samples)
	if hi == lo {
		hi = lo + 1
	}
	h := Histogram{Lo: lo, Hi: hi, Width: (hi - lo) / float64(bins), Counts: make([]int, bins)}
	for _, v := range samples {
		i := int((v - lo) / h.Width)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		h.Counts[i]++
	}
	return h
}

// Bimodality is a crude bimodality signal: the ratio of between-cluster to
// total variance under the best 2-means split of the sorted samples (close
// to 1 = strongly bimodal, near 0 = unimodal). Fig. 8's pinned-without-
// irq-balance curve is the bimodal case.
func Bimodality(samples []float64) float64 {
	if len(samples) < 4 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	total := Std(s)
	if total == 0 {
		return 0
	}
	best := 0.0
	for cut := 1; cut < len(s); cut++ {
		a, b := s[:cut], s[cut:]
		ma, mb := Mean(a), Mean(b)
		wa, wb := float64(len(a))/float64(len(s)), float64(len(b))/float64(len(s))
		m := Mean(s)
		between := wa*(ma-m)*(ma-m) + wb*(mb-m)*(mb-m)
		if r := between / (total * total); r > best {
			best = r
		}
	}
	return best
}

// ---- text rendering ----

// BarChart renders a horizontal ParaProf-style bar chart.
func BarChart(w io.Writer, title string, labels []string, values []float64, unit string, width int) {
	if width <= 0 {
		width = 50
	}
	fmt.Fprintf(w, "%s\n", title)
	maxV := Max(values)
	if maxV <= 0 || math.IsNaN(maxV) {
		maxV = 1
	}
	maxLabel := 0
	for _, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	for i, l := range labels {
		n := int(values[i] / maxV * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %-*s |%-*s| %.3f %s\n",
			maxLabel, l, width, strings.Repeat("#", n), values[i], unit)
	}
}

// Table renders an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(headers)
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range rows {
		line(r)
	}
}

// Series writes a gnuplot-consumable "x y" dump with a header comment, the
// machine-readable form of each figure's curves.
func Series(w io.Writer, name string, pts []Point) {
	fmt.Fprintf(w, "# series: %s (%d points)\n", name, len(pts))
	for _, p := range pts {
		fmt.Fprintf(w, "%g %g\n", p.X, p.Y)
	}
	fmt.Fprintln(w)
}

// SeriesSummary renders a one-line quantile summary of a sample set —
// enough to compare curve positions without plotting.
func SeriesSummary(w io.Writer, name string, samples []float64) {
	fmt.Fprintf(w, "  %-24s n=%-4d min=%-12.4g p25=%-12.4g median=%-12.4g p75=%-12.4g max=%-12.4g mean=%-12.4g\n",
		name, len(samples), Min(samples), Quantile(samples, 0.25),
		Quantile(samples, 0.5), Quantile(samples, 0.75), Max(samples), Mean(samples))
}
