package analysis

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 1 || pts[2].X != 3 {
		t.Errorf("x not sorted: %+v", pts)
	}
	if pts[2].Y != 1.0 {
		t.Errorf("last y = %v, want 1", pts[2].Y)
	}
	if pts[0].Y <= 0 || pts[0].Y > 1 {
		t.Errorf("first y = %v", pts[0].Y)
	}
	if CDF(nil) != nil {
		t.Error("empty CDF must be nil")
	}
}

func TestCDFProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var in []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				in = append(in, v)
			}
		}
		pts := CDF(in)
		if len(pts) != len(in) {
			return false
		}
		// x non-decreasing, y strictly increasing to 1.
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].Y <= pts[i-1].Y {
				return false
			}
		}
		return len(pts) == 0 || pts[len(pts)-1].Y == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if Quantile(s, 0) != 1 || Quantile(s, 1) != 5 {
		t.Error("extremes wrong")
	}
	if got := Quantile(s, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(s, 0.25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile must be NaN")
	}
}

func TestMeanStdMinMax(t *testing.T) {
	s := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(s) != 5 {
		t.Errorf("mean = %v", Mean(s))
	}
	if Std(s) != 2 {
		t.Errorf("std = %v", Std(s))
	}
	if Min(s) != 2 || Max(s) != 9 {
		t.Error("min/max wrong")
	}
}

func TestPercentDiff(t *testing.T) {
	if got := PercentDiff(512.2, 295.6); math.Abs(got-73.27) > 0.1 {
		t.Errorf("the paper's anomaly slowdown computes to %v, want ~73.3", got)
	}
	if !math.IsNaN(PercentDiff(1, 0)) {
		t.Error("zero base must be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(h.Counts) != 5 {
		t.Fatalf("bins = %d", len(h.Counts))
	}
	total := 0
	for _, c := range h.Counts {
		total += c
		if c != 2 {
			t.Errorf("uniform data not evenly binned: %v", h.Counts)
		}
	}
	if total != 10 {
		t.Errorf("histogram lost samples: %d", total)
	}
	// Degenerate: all equal values land in one bin without panicking.
	h2 := NewHistogram([]float64{5, 5, 5}, 4)
	sum := 0
	for _, c := range h2.Counts {
		sum += c
	}
	if sum != 3 {
		t.Errorf("degenerate histogram lost samples: %v", h2.Counts)
	}
}

func TestBimodalitySeparatesShapes(t *testing.T) {
	var unimodal, bimodal []float64
	for i := 0; i < 50; i++ {
		unimodal = append(unimodal, 100+float64(i%7))
		if i%2 == 0 {
			bimodal = append(bimodal, 10+float64(i%5))
		} else {
			bimodal = append(bimodal, 1000+float64(i%5))
		}
	}
	bu, bb := Bimodality(unimodal), Bimodality(bimodal)
	if bb < 0.9 {
		t.Errorf("bimodal score = %v, want > 0.9", bb)
	}
	if bu > 0.8 {
		t.Errorf("unimodal score = %v, want < 0.8", bu)
	}
	if bb <= bu {
		t.Error("bimodality must rank the bimodal sample higher")
	}
}

func TestBarChartRenders(t *testing.T) {
	var sb strings.Builder
	BarChart(&sb, "Kernel activity", []string{"host0", "host8"}, []float64{1.5, 3.0}, "s", 20)
	out := sb.String()
	if !strings.Contains(out, "host8") || !strings.Contains(out, "####################") {
		t.Errorf("bar chart malformed:\n%s", out)
	}
	// host0's bar must be half of host8's.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("host0 bar = %d hashes, want 10", strings.Count(lines[1], "#"))
	}
}

func TestTableAligns(t *testing.T) {
	var sb strings.Builder
	Table(&sb, []string{"Config", "Time"}, [][]string{{"128x1", "295.6"}, {"64x2 Anomaly", "512.2"}})
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	w := len(lines[0])
	for _, l := range lines {
		if len(l) != w {
			t.Errorf("ragged table:\n%s", sb.String())
		}
	}
}

func TestSeriesOutput(t *testing.T) {
	var sb strings.Builder
	Series(&sb, "fig5/128x1", []Point{{1, 0.5}, {2, 1}})
	out := sb.String()
	if !strings.Contains(out, "# series: fig5/128x1") || !strings.Contains(out, "1 0.5") {
		t.Errorf("series dump malformed:\n%s", out)
	}
}

func TestSeriesSummaryStable(t *testing.T) {
	var sb strings.Builder
	s := []float64{5, 1, 4, 2, 3}
	SeriesSummary(&sb, "x", s)
	if !strings.Contains(sb.String(), "median=3") {
		t.Errorf("summary missing median: %s", sb.String())
	}
	// Input must not be reordered.
	if !sort.SliceIsSorted([]int{0}, func(i, j int) bool { return false }) {
		t.Skip()
	}
	if s[0] != 5 {
		t.Error("SeriesSummary mutated its input")
	}
}
