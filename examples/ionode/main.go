// ionode simulates the scenario the paper's §6 targets next: a BG/L-style
// I/O node serving a group of compute nodes. Compute clients stream data
// over the network; an ionoded daemon on the I/O node receives each chunk
// and writes it to disk. KTAU's integrated views show exactly where the
// time goes — network receive processing in interrupt context, VFS and
// block-layer activity in the daemon's context, and the disk as the
// bottleneck the voluntary-wait times point to.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ktau"
)

func main() {
	clients := flag.Int("clients", 4, "compute nodes streaming to the I/O node")
	chunks := flag.Int("chunks", 6, "chunks of 256KB each client writes")
	flag.Parse()

	nodes := ktau.UniformNodes("cn", *clients)
	nodes = append(nodes, ktau.NodeSpec{Name: "ionode"})
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  nodes,
		Kernel: ktau.DefaultKernelParams(),
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			Mapping: true, RetainExited: true,
		},
		Seed: 17,
	})
	defer c.Shutdown()

	ion := c.NodeByName("ionode")
	disk := ktau.NewDisk(ion.K, "hda", ktau.DefaultDiskSpec())
	logFile := disk.Open("pvfs-data", 0)
	disk.StartPdflush(50*time.Millisecond, logFile)

	const chunk = 256 * 1024
	var tasks []*ktau.Task

	// One server task per client connection (an ionoded worker pool).
	var offset int64
	for i := 0; i < *clients; i++ {
		cn := c.Node(i)
		toIon, fromCN := ktau.Connect(cn.Stack, ion.Stack)
		n := *chunks

		tasks = append(tasks, cn.K.Spawn(fmt.Sprintf("compute%d", i), func(u *ktau.UCtx) {
			tp := ktau.NewTau(u, ktau.DefaultTauOptions())
			for j := 0; j < n; j++ {
				tp.Timed("compute", func() { u.Compute(20 * time.Millisecond) })
				tp.Timed("checkpoint_write", func() {
					toIon.Send(u, chunk)
					toIon.Recv(u, 16) // ack from the I/O node
				})
			}
		}, ktau.SpawnOpts{Kind: ktau.KindUser}))

		base := offset
		offset += int64(n) * chunk
		tasks = append(tasks, ion.K.Spawn(fmt.Sprintf("ionoded%d", i), func(u *ktau.UCtx) {
			for j := 0; j < n; j++ {
				fromCN.Recv(u, chunk)
				logFile.Write(u, base+int64(j)*chunk, chunk)
				logFile.Fsync(u) // durability before acking, like a PVFS sync
				fromCN.Send(u, 16)
			}
		}, ktau.SpawnOpts{Kind: ktau.KindDaemon}))
	}

	if !c.RunUntilDone(tasks, 30*time.Minute) {
		fmt.Fprintln(os.Stderr, "ionode run did not finish")
		os.Exit(1)
	}
	fmt.Printf("all checkpoints durable at %v (virtual)\n\n", c.Now())

	// The I/O node's kernel-wide view: where did the node spend its time?
	kw := ion.K.Ktau().KernelWide()
	fmt.Println("I/O node kernel-wide view (top activity):")
	hz := float64(ion.K.Params().HZ)
	for _, name := range []string{"submit_bio", "generic_file_write", "sys_fsync",
		"end_request", "tcp_v4_rcv", "do_IRQ[hda]", "do_IRQ[eth0]", "schedule_vol"} {
		if ev := kw.FindEvent(name); ev != nil {
			fmt.Printf("  %-22s calls=%-6d excl=%8.1fms\n",
				name, ev.Calls, float64(ev.Excl)/hz*1e3)
		}
	}
	fmt.Printf("\ndisk: %d requests, %d pages written, %d seeks\n",
		disk.Stats.Requests, disk.Stats.PagesWrite, disk.Stats.Seeks)

	// Client-side: how much of checkpoint_write is really I/O-node wait?
	cn0 := c.Node(0)
	var t0 *ktau.Task
	for _, t := range cn0.K.AllTasks() {
		if t.Name() == "compute0" {
			t0 = t
		}
	}
	if t0 != nil {
		fmt.Printf("\nclient compute0: vol wait %v of %v total — time blocked on the I/O node\n",
			t0.VolWait, t0.Runtime())
	}
}
