// lu_cluster reproduces the paper's controlled-experiment story (§5.1): an
// LU run across a cluster where one node hosts a misbehaving "overhead"
// process. KTAU's kernel-wide view localises the disturbed node, and its
// process-centric view identifies the culprit process — something no
// user-level-only profile can do.
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"ktau"
)

func main() {
	const nodes = 8
	const ranks = 16

	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("host", nodes),
		Kernel: ktau.DefaultKernelParams(),
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			Mapping: true, RetainExited: true,
		},
		Seed: 7,
	})
	defer c.Shutdown()

	// Ordinary daemons everywhere; the anomaly on the last node.
	for _, n := range c.Nodes {
		ktau.StartSystemDaemons(n.K)
	}
	culpritNode := c.Node(nodes - 1)
	ktau.StartDaemon(culpritNode.K, ktau.DaemonSpec{
		Name:   "overhead",
		Period: 600 * time.Millisecond, // scaled from the paper's 10s sleep
		Busy:   200 * time.Millisecond, // scaled from the paper's 3s busy loop
	})

	// 16 LU ranks, two per node.
	specs := make([]ktau.RankSpec, ranks)
	for r := range specs {
		specs[r] = ktau.RankSpec{Stack: c.Node(r % nodes).Stack}
	}
	w := ktau.NewWorld(specs, ktau.DefaultTauOptions())
	tasks := w.Launch("LU", ktau.LU(ktau.DefaultLUConfig(ranks)))

	if !c.RunUntilDone(tasks, 10*time.Minute) {
		fmt.Fprintln(os.Stderr, "LU did not finish")
		os.Exit(1)
	}
	fmt.Printf("LU finished at %v (virtual)\n\n", c.Now())

	// Step 1 — kernel-wide view per node: where is the problem?
	fmt.Println("step 1: kernel-wide scheduling time per node (Fig 2-A)")
	labels := make([]string, nodes)
	values := make([]float64, nodes)
	worst := 0
	for i, n := range c.Nodes {
		kw := n.K.Ktau().KernelWide()
		var sched int64
		for _, e := range kw.Events {
			if e.Group == ktau.GroupSched {
				sched += e.Excl
			}
		}
		labels[i] = n.Name
		values[i] = float64(sched) / float64(n.K.Params().HZ)
		if values[i] > values[worst] {
			worst = i
		}
	}
	ktau.BarChart(os.Stdout, "", labels, values, "s", 48)
	fmt.Printf("=> node %s stands out\n\n", labels[worst])

	// Step 2 — process-centric view of the suspicious node: who is it?
	fmt.Printf("step 2: per-process activity on %s (Fig 2-B)\n", labels[worst])
	type proc struct {
		name string
		pid  int
		busy float64
	}
	var procs []proc
	k := c.Node(worst).K
	for _, t := range k.AllTasks() {
		snap := k.Ktau().SnapshotTask(t.KD())
		var busy int64
		for _, e := range snap.Events {
			if e.Name != "schedule_vol" {
				busy += e.Excl
			}
		}
		procs = append(procs, proc{t.Name(), t.PID(), float64(busy) / float64(k.Params().HZ)})
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].busy > procs[j].busy })
	for _, p := range procs {
		if p.busy < 0.001 {
			continue
		}
		fmt.Printf("  pid %-7d %-14s %8.3fs kernel activity\n", p.pid, p.name, p.busy)
	}
	fmt.Println("=> the 'overhead' process is the culprit")

	// Step 3 — effect on the application: ranks on the disturbed node show
	// involuntary scheduling; everyone else voluntarily waits for them.
	fmt.Println("\nstep 3: per-rank scheduling behaviour")
	for r, t := range tasks {
		nd := c.Node(r % nodes)
		fmt.Printf("  rank %2d on %-6s vol=%8.1fms invol=%8.1fms\n",
			r, nd.Name, t.VolWait.Seconds()*1e3, t.InvolWait.Seconds()*1e3)
	}
}
