// Quickstart: boot one simulated node, run a small program, and look at its
// performance from both KTAU perspectives — the kernel-wide view and the
// process-centric view — plus the user/kernel merged profile.
package main

import (
	"fmt"
	"os"
	"time"

	"ktau"
)

func main() {
	// 1. Boot a node: a dual-CPU 450 MHz machine with the full KTAU patch
	//    compiled in and all instrumentation groups enabled.
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("node", 1),
		Kernel: ktau.DefaultKernelParams(),
		Ktau: ktau.MeasurementOptions{
			Compiled:     ktau.GroupAll,
			Boot:         ktau.GroupAll,
			Mapping:      true, // map kernel events to user routines
			RetainExited: true,
		},
		Seed: 42,
	})
	defer c.Shutdown()
	node := c.Node(0)

	// 2. Run a program that computes, sleeps and makes system calls, with a
	//    TAU user-level profiler marking its phases.
	var userProf ktau.TauProfile
	app := node.K.Spawn("app", func(u *ktau.UCtx) {
		tau := ktau.NewTau(u, ktau.DefaultTauOptions())
		for i := 0; i < 50; i++ {
			tau.Timed("compute_phase", func() {
				u.Compute(2 * time.Millisecond)
			})
			tau.Timed("io_phase", func() {
				u.Syscall("sys_write", func(kc *ktau.KCtx) {
					kc.Use(20 * time.Microsecond)
				})
				u.Sleep(500 * time.Microsecond)
			})
		}
		userProf = tau.Snapshot("app", 0)
	}, ktau.SpawnOpts{Kind: ktau.KindUser})

	if !c.RunUntilDone([]*ktau.Task{app}, time.Minute) {
		fmt.Fprintln(os.Stderr, "app did not finish")
		os.Exit(1)
	}
	fmt.Printf("app finished at %v (virtual)\n\n", c.Now())

	// 3. Process-centric view: the app's own kernel profile, read through
	//    /proc/ktau and libKtau exactly as a real client would.
	fs := ktau.NewProcFS(node.K.Ktau())
	h := ktau.OpenKtau(fs)
	snap, err := h.GetProfile(ktau.ScopeOther, app.PID())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("== process-centric view (the app's kernel profile) ==")
	ktau.FormatProfile(os.Stdout, snap, node.K.Params().HZ)

	// 4. Kernel-wide view: aggregate activity of every process on the node.
	kw, err := h.GetProfile(ktau.ScopeKernelWide, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\n== kernel-wide view (all processes aggregated) ==")
	ktau.FormatProfile(os.Stdout, kw, node.K.Params().HZ)

	// 5. The integrated view: user routines with kernel time subtracted and
	//    kernel events spliced in (the paper's Fig 2-D).
	merged := ktau.Merge(userProf, snap)
	fmt.Println("\n== merged user/kernel profile ==")
	hz := float64(node.K.Params().HZ)
	for _, e := range merged.Entries {
		side := "user  "
		if e.Kernel {
			side = "kernel"
		}
		fmt.Printf("  %-22s %s excl=%8.3fms", e.Name, side, float64(e.Excl)/hz*1e3)
		if !e.Kernel && e.KernelWithin > 0 {
			fmt.Printf("  (TAU-only view said %.3fms; %.3fms was actually kernel time)",
				float64(e.UserOnlyExcl)/hz*1e3, float64(e.KernelWithin)/hz*1e3)
		}
		fmt.Println()
	}
}
