// sweep3d replays the paper's §5.2 configuration study at reduced scale:
// ASCI Sweep3D on N ranks placed one-per-node versus two-per-node, with and
// without CPU pinning and interrupt balancing. KTAU's metrics expose why
// each configuration behaves as it does.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ktau"
)

func run(ranks, perNode int, pinned, irqBalance bool, seed uint64) (time.Duration, []float64, []float64) {
	nodes := ranks / perNode
	kp := ktau.DefaultKernelParams()
	kp.IRQBalance = irqBalance
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("ccn", nodes),
		Kernel: kp,
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			Mapping: true, RetainExited: true,
		},
		Seed: seed,
	})
	defer c.Shutdown()
	for _, n := range c.Nodes {
		ktau.StartSystemDaemons(n.K)
	}

	specs := make([]ktau.RankSpec, ranks)
	for r := range specs {
		specs[r] = ktau.RankSpec{Stack: c.Node(r % nodes).Stack}
		if pinned {
			specs[r].Affinity = ktau.AffinityCPU(r / nodes)
		}
	}
	w := ktau.NewWorld(specs, ktau.DefaultTauOptions())
	tasks := w.Launch("sweep3d", ktau.Sweep3D(ktau.DefaultSweepConfig(ranks)))
	if !c.RunUntilDone(tasks, 20*time.Minute) {
		fmt.Fprintln(os.Stderr, "sweep3d did not finish")
		os.Exit(1)
	}

	// Per-rank IRQ exposure and TCP-in-compute mixing.
	var irq, mix []float64
	for r, t := range tasks {
		k := c.Node(r % nodes).K
		snap := k.Ktau().SnapshotTask(t.KD())
		var irqCyc int64
		for _, e := range snap.Events {
			if e.Group == ktau.GroupIRQ {
				irqCyc += e.Excl
			}
		}
		irq = append(irq, float64(irqCyc)/float64(k.Params().HZ)*1e3)
		var calls uint64
		for _, m := range snap.Mapped {
			if m.CtxName == "sweep_compute" && m.Group == ktau.GroupTCP {
				calls += m.Calls
			}
		}
		mix = append(mix, float64(calls))
	}
	return c.Now().Duration(), irq, mix
}

func main() {
	ranks := flag.Int("ranks", 32, "MPI ranks (use 128 for paper scale)")
	flag.Parse()

	type config struct {
		name           string
		perNode        int
		pinned, irqBal bool
	}
	configs := []config{
		{"Nx1 (one rank per node)", 1, false, false},
		{"(N/2)x2", 2, false, false},
		{"(N/2)x2 Pinned", 2, true, false},
		{"(N/2)x2 Pinned,I-Bal", 2, true, true},
	}

	var base time.Duration
	for _, cfg := range configs {
		exec, irq, mix := run(*ranks, cfg.perNode, cfg.pinned, cfg.irqBal, 1)
		if base == 0 {
			base = exec
		}
		diff := 100 * (exec.Seconds() - base.Seconds()) / base.Seconds()
		fmt.Printf("%-26s exec=%8.3fs (%+5.1f%%)  median IRQ/rank=%6.1fms  median TCP-in-compute=%5.0f calls\n",
			cfg.name, exec.Seconds(), diff,
			ktau.Quantile(irq, 0.5), ktau.Quantile(mix, 0.5))
	}
	fmt.Println("\n(paper: dual-process placement costs ~16%; pinning plus irq-balance")
	fmt.Println(" recovers most of it, at the price of dearer TCP processing and more")
	fmt.Println(" communication mixed into compute phases — Figs 8-10, Table 2)")
}
