// tracing demonstrates merged user/kernel event tracing (the paper's
// Fig 2-E): TAU records application events while KTAU records kernel events
// on the same virtual timebase; merging them shows exactly which kernel
// activity — sys_writev, sock_sendmsg, tcp_sendmsg, interrupts, softirqs —
// occurred inside one user-space MPI_Send.
package main

import (
	"fmt"
	"os"
	"time"

	"ktau"
)

func main() {
	const ranks = 2
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("host", ranks),
		Kernel: ktau.DefaultKernelParams(),
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			Mapping: true, RetainExited: true,
			TraceCapacity: 32768, // per-process kernel trace ring
		},
		Seed: 3,
	})
	defer c.Shutdown()

	specs := []ktau.RankSpec{
		{Stack: c.Node(0).Stack},
		{Stack: c.Node(1).Stack},
	}
	topts := ktau.DefaultTauOptions()
	topts.TraceCapacity = 32768 // user-level trace ring

	w := ktau.NewWorld(specs, topts)
	tasks := w.Launch("app", func(r *ktau.Rank) {
		if r.ID() == 0 {
			for i := 0; i < 3; i++ {
				r.Compute("work", 2*time.Millisecond)
				r.Send(1, 64*1024, 1) // a large message: many segments
				r.Recv(1, 2)
			}
		} else {
			for i := 0; i < 3; i++ {
				r.Recv(0, 1)
				r.Send(0, 256, 2)
			}
		}
	})
	if !c.RunUntilDone(tasks, time.Minute) {
		fmt.Fprintln(os.Stderr, "run did not finish")
		os.Exit(1)
	}

	// Merge rank 0's user (TAU) and kernel (KTAU) traces.
	k := c.Node(0).K
	user := w.Rank(0).Tau.Trace()
	kern := tasks[0].KD().Trace().Snapshot()
	tl := ktau.MergeTimeline(user, kern, k.Ktau().Reg.Name)
	fmt.Printf("merged timeline: %d events (%d user + %d kernel)\n\n",
		len(tl), len(user), len(kern))

	// Cut the window of the second MPI_Send and render it.
	win := ktau.TimelineWindow(tl, "MPI_Send()", 1)
	if win == nil {
		fmt.Fprintln(os.Stderr, "no MPI_Send window found")
		os.Exit(1)
	}
	fmt.Println("kernel activity inside one user-space MPI_Send (Fig 2-E):")
	ktau.RenderTimeline(os.Stdout, win, k.Params().HZ)
}
