// lmbench runs the LMBENCH-style micro-benchmarks the paper also exercised
// KTAU with: null syscall latency, context-switch latency, and TCP
// latency/bandwidth — each once with KTAU instrumentation disabled at boot
// and once fully enabled, showing the probe-only versus measured costs.
package main

import (
	"fmt"
	"os"
	"time"

	"ktau"
)

func bench(boot ktau.Group) (nullSC, ctxSW, tcpLat time.Duration, tcpBW float64) {
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("node", 2),
		Kernel: ktau.DefaultKernelParams(),
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll, Boot: boot, RetainExited: true,
		},
		Seed: 9,
	})
	defer c.Shutdown()
	k := c.Node(0).K
	nullSC = ktau.LMBenchNullSyscall(k, 2000)
	ctxSW = ktau.LMBenchCtxSwitch(k, 500)
	tcpLat, tcpBW = ktau.LMBenchTCP(c, c.Node(0).Stack, c.Node(1).Stack, 50, 4_000_000)
	return
}

func main() {
	fmt.Println("LMBENCH-style micro-benchmarks on a simulated dual 450MHz node")
	fmt.Println("(100 Mb/s Ethernet between nodes)")
	fmt.Println()
	offSC, offCS, offLat, offBW := bench(ktau.GroupNone) // compiled in, boot-disabled
	onSC, onCS, onLat, onBW := bench(ktau.GroupAll)

	rows := [][]string{
		{"null syscall", fmt.Sprint(offSC), fmt.Sprint(onSC)},
		{"context switch", fmt.Sprint(offCS), fmt.Sprint(onCS)},
		{"TCP latency (1B RTT/2)", fmt.Sprint(offLat), fmt.Sprint(onLat)},
		{"TCP bandwidth", fmt.Sprintf("%.2f MB/s", offBW/1e6), fmt.Sprintf("%.2f MB/s", onBW/1e6)},
	}
	ktau.TextTable(os.Stdout, []string{"metric", "KTAU boot-disabled", "KTAU enabled"}, rows)
	fmt.Println()
	fmt.Println("The boot-disabled column shows the paper's 'Ktau Off' claim: compiled-in")
	fmt.Println("instrumentation behind runtime flags costs nothing measurable; enabling")
	fmt.Println("it adds the per-event start/stop cost of Table 4.")
}
