// Serving-workload benchmark: one serial run of the default two-tenant
// scenario at 16 nodes (4 client nodes driving 12 servers, 128 logical
// clients, the api-batchd rogue planted). BenchmarkServe re-measures the
// run and writes BENCH_serve.json comparing the worst tenant p99 and the
// completed request rate against the recorded baseline. Both metrics live
// in the virtual time domain, so for a fixed seed they are deterministic:
// the gate in scripts/check.sh catches behavioural regressions (scheduling,
// queueing, or protocol changes that stretch tails or lose throughput),
// not host jitter.
//
//	go test -bench=BenchmarkServe -benchtime=1x
package ktau_test

import (
	"runtime"
	"testing"
	"time"

	"ktau"
)

// Recorded baseline for the 16-node seed-7 scenario (virtual-time metrics,
// host-independent): the worst tenant p99 and the completed request rate
// over the load window at the time the benchmark was introduced.
const (
	baseServeP99Ms = 16.253 // worst tenant p99, milliseconds
	baseServeRPS   = 4972.0 // completed requests per virtual second
)

// BenchmarkServe runs the default serving scenario once per iteration and
// writes the regression comparison to BENCH_serve.json.
func BenchmarkServe(b *testing.B) {
	var out map[string]any
	for i := 0; i < b.N; i++ {
		spec := ktau.DefaultServe(16)
		spec.Seed = 7
		t0 := time.Now()
		res := ktau.RunServe(spec)
		wall := time.Since(t0)
		if !res.Completed {
			b.Fatal("serve run did not drain")
		}
		if res.LeakedConns != 0 {
			b.Fatalf("%d connection endpoints leaked", res.LeakedConns)
		}

		var ok uint64
		var worstP99 time.Duration
		tenants := map[string]any{}
		for _, ts := range res.Tenants {
			ok += ts.OK
			if ts.P99 > worstP99 {
				worstP99 = ts.P99
			}
			tenants[ts.Name] = map[string]any{
				"ok":      ts.OK,
				"drops":   ts.Drops,
				"p50_ms":  float64(ts.P50) / 1e6,
				"p99_ms":  float64(ts.P99) / 1e6,
				"p999_ms": float64(ts.P999) / 1e6,
			}
		}
		p99ms := float64(worstP99) / 1e6
		rps := float64(ok) / res.Spec.Serve.Duration.Seconds()
		b.ReportMetric(p99ms, "p99-ms")
		b.ReportMetric(rps, "req/s")
		b.ReportMetric(wall.Seconds(), "wall-s")

		out = map[string]any{
			"benchmark":          "multi-tenant serving workload, 16 nodes, seed 7, serial",
			"nodes":              16,
			"host_cpus":          runtime.NumCPU(),
			"wall_s":             wall.Seconds(),
			"virtual_load_s":     res.Spec.Serve.Duration.Seconds(),
			"p99_ms":             p99ms,
			"baseline_p99_ms":    baseServeP99Ms,
			"p99_ratio":          p99ms / baseServeP99Ms,
			"req_per_s":          rps,
			"baseline_req_per_s": baseServeRPS,
			"rps_ratio":          rps / baseServeRPS,
			"rogue_fingered":     res.RogueFingered,
			"tenants":            tenants,
		}
	}
	writeBench(b, "BENCH_serve.json", out)
}
