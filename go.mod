module ktau

go 1.22
