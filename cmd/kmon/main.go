// Command kmon demonstrates the perfmon subsystem: a simulated cluster runs
// an application rank per node alongside the usual daemon population while a
// kmond agent on every node ships delta-encoded kernel profiles to an elected
// collector over the same simulated network. One node optionally hosts the
// §5.1 "overhead" anomaly daemon; the online detector identifies it from the
// collected time-series and the tool prints the live cluster view — the
// Figs. 8-10 analysis as a monitoring product rather than a post-mortem.
//
// Example:
//
//	kmon -nodes 8 -rounds 12 -noisy 5
//	kmon -nodes 16 -rounds 30 -noisy 3 -prom metrics.prom -jsonl series.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ktau"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster size")
	rounds := flag.Int("rounds", 12, "collection rounds before the pipeline stops")
	interval := flag.Duration("interval", 100*time.Millisecond, "collection interval (virtual time)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	noisy := flag.Int("noisy", 5, "node index hosting the anomaly daemon (-1 = none)")
	period := flag.Duration("noisy-period", 120*time.Millisecond, "anomaly daemon period")
	busy := flag.Duration("noisy-busy", 80*time.Millisecond, "anomaly daemon busy burst")
	topk := flag.Int("topk", 8, "hottest kernel routines to list")
	window := flag.Int("window", 0, "detector window in stored samples (0 = all retained)")
	promPath := flag.String("prom", "", "write Prometheus text metrics to this file")
	jsonlPath := flag.String("jsonl", "", "write the JSON-lines time-series to this file")
	flag.Parse()

	if *nodes < 2 {
		fmt.Fprintln(os.Stderr, "kmon: need at least 2 nodes")
		os.Exit(1)
	}

	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes: ktau.UniformNodes("node", *nodes),
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			Mapping: true, RetainExited: true,
		},
		Seed: *seed,
	})
	defer c.Shutdown()

	// One compute+sleep application rank per node, plus the standard daemons.
	for i, n := range c.Nodes {
		ktau.StartSystemDaemons(n.K)
		n.K.Spawn(fmt.Sprintf("app.rank%d", i), func(u *ktau.UCtx) {
			for {
				u.Compute(3 * time.Millisecond)
				u.Sleep(2 * time.Millisecond)
			}
		}, ktau.SpawnOpts{})
	}
	if *noisy >= 0 && *noisy < *nodes {
		ktau.StartDaemon(c.Node(*noisy).K, ktau.DaemonSpec{
			Name: "overhead", Period: *period, Busy: *busy,
		})
	}

	pm, err := ktau.DeployPerfMon(c, ktau.PerfMonConfig{
		Interval:   *interval,
		Rounds:     *rounds,
		RankPrefix: "app.rank",
		Detect:     ktau.DetectConfig{Window: *window},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmon:", err)
		os.Exit(1)
	}
	if !c.RunUntilDone(pm.Tasks(), 10*time.Minute) {
		fmt.Fprintln(os.Stderr, "kmon: pipeline did not drain within the deadline")
		os.Exit(1)
	}

	st := pm.Store()
	rep := st.DetectNoise(pm.Config().Detect, pm.Config().RankPrefix)
	st.WriteClusterView(os.Stdout, rep, *topk)

	if loads := st.RankImbalance(*window, pm.Config().RankPrefix); len(loads) > 0 {
		fmt.Printf("-- rank load (tick-sampled CPU cycles, heaviest first) --\n")
		for i, l := range loads {
			if i >= *topk {
				break
			}
			fmt.Printf("%2d. %-14s %-8s cycles=%-12d ratio=%.2f\n",
				i+1, l.Name, l.Node, l.CPUCycles, l.Ratio)
		}
	}
	fmt.Printf("collector: %s; virtual time %v\n",
		c.Node(pm.Collector()).Name, c.Now())

	if *promPath != "" {
		if err := writeFile(*promPath, func(f *os.File) error { return st.WritePrometheus(f) }); err != nil {
			fmt.Fprintln(os.Stderr, "kmon:", err)
			os.Exit(1)
		}
	}
	if *jsonlPath != "" {
		if err := writeFile(*jsonlPath, func(f *os.File) error { return st.WriteJSONLines(f, *window) }); err != nil {
			fmt.Fprintln(os.Stderr, "kmon:", err)
			os.Exit(1)
		}
	}
}

func writeFile(path string, render func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
