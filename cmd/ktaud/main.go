// Command ktaud demonstrates the KTAUD daemon of paper §4.5: a simulated
// node runs an uninstrumented ("closed-source") workload while KTAUD
// periodically extracts every process's kernel profile through the
// session-less /proc/ktau protocol and dumps them in libKtau's ASCII format.
//
// Example:
//
//	ktaud -interval 250ms -rounds 6
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ktau"
)

func main() {
	interval := flag.Duration("interval", 250*time.Millisecond, "collection interval (virtual time)")
	rounds := flag.Int("rounds", 6, "collection rounds before exiting")
	seed := flag.Uint64("seed", 1, "simulation seed")
	quiet := flag.Bool("quiet", false, "print per-round summaries instead of full ASCII profiles")
	traceCap := flag.Int("trace", 0, "trace mode: enable per-process kernel trace rings of this capacity and drain them each round")
	traceOut := flag.String("trace-out", "", "write the merged node trace (Chrome/Perfetto JSON) to this file (implies -trace 4096 if -trace unset)")
	flag.Parse()
	if *traceOut != "" && *traceCap <= 0 {
		*traceCap = 4096
	}

	kp := ktau.DefaultKernelParams()
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("node", 1),
		Kernel: kp,
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			Mapping: true, RetainExited: true,
			TraceCapacity: *traceCap,
		},
		Seed: *seed,
	})
	defer c.Shutdown()
	k := c.Node(0).K
	ktau.StartSystemDaemons(k)

	// A "closed-source" workload KTAUD monitors from outside: it cannot be
	// source-instrumented, which is exactly the case KTAUD exists for.
	app := k.Spawn("blackbox", func(u *ktau.UCtx) {
		for {
			u.Compute(3 * time.Millisecond)
			u.Syscall("sys_write", func(kc *ktau.KCtx) { kc.Use(15 * time.Microsecond) })
			u.Sleep(time.Millisecond)
		}
	}, ktau.SpawnOpts{Kind: ktau.KindUser})
	_ = app

	fs := ktau.NewProcFS(k.Ktau())
	cfg := ktau.KTAUDConfig{
		Interval: *interval,
		Rounds:   *rounds,
	}
	if *quiet {
		cfg.OnSnapshot = func(round int, snaps []ktau.Snapshot) {
			ktau.SummarizeRound(os.Stdout, round, c.Now().Duration(), snaps)
		}
	} else {
		cfg.Out = os.Stdout
	}

	// Trace mode: KTAUD drains every process's kernel trace ring each round
	// (§4.5: "both profile and trace data") and the harvested records are
	// merged into one Chrome/Perfetto timeline at exit.
	var col *ktau.TraceCollector
	var traceRecs int
	if *traceCap > 0 {
		col = ktau.NewTraceCollector(1, kp.HZ)
		col.SetNodeName(0, "node0")
		reg := k.Ktau().Reg
		cfg.Traces = true
		cfg.OnTrace = func(round int, dumps []ktau.TraceDump) {
			f := ktau.TraceFrame{Node: "node0", Round: round}
			for _, d := range dumps {
				name := fmt.Sprintf("pid%d", d.PID)
				if t := k.FindTask(d.PID); t != nil {
					name = t.Name()
				}
				s := ktau.TraceStream{PID: d.PID, Task: name, Kernel: true, Lost: d.Lost}
				for _, r := range d.Records {
					s.Recs = append(s.Recs, ktau.TraceRec{
						TSC: r.TSC, Name: reg.Name(r.Ev), Kind: r.Kind, Val: r.Val,
					})
					traceRecs++
				}
				f.Streams = append(f.Streams, s)
			}
			col.Ingest(f, 0)
		}
	}

	daemon := k.Spawn("ktaud", ktau.KTAUD(fs, cfg), ktau.SpawnOpts{Kind: ktau.KindDaemon})

	if !c.RunUntilDone([]*ktau.Task{daemon}, 10*time.Minute) {
		fmt.Fprintln(os.Stderr, "ktaud: daemon did not finish its rounds")
		os.Exit(1)
	}
	fmt.Printf("ktaud: %d rounds complete at %v (virtual); daemon cpu=%v kernel=%v\n",
		*rounds, c.Now(), daemon.UserTime, daemon.KernTime)
	if col != nil {
		fmt.Printf("ktaud: trace mode drained %d kernel records\n", traceRecs)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ktaud:", err)
				os.Exit(1)
			}
			werr := col.WriteChromeTrace(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "ktaud:", werr)
				os.Exit(1)
			}
			fmt.Printf("ktaud: wrote %s\n", *traceOut)
		}
	}
}
