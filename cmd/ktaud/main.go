// Command ktaud demonstrates the KTAUD daemon of paper §4.5: a simulated
// node runs an uninstrumented ("closed-source") workload while KTAUD
// periodically extracts every process's kernel profile through the
// session-less /proc/ktau protocol and dumps them in libKtau's ASCII format.
//
// Example:
//
//	ktaud -interval 250ms -rounds 6
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ktau"
)

func main() {
	interval := flag.Duration("interval", 250*time.Millisecond, "collection interval (virtual time)")
	rounds := flag.Int("rounds", 6, "collection rounds before exiting")
	seed := flag.Uint64("seed", 1, "simulation seed")
	quiet := flag.Bool("quiet", false, "print per-round summaries instead of full ASCII profiles")
	flag.Parse()

	kp := ktau.DefaultKernelParams()
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("node", 1),
		Kernel: kp,
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			Mapping: true, RetainExited: true,
		},
		Seed: *seed,
	})
	defer c.Shutdown()
	k := c.Node(0).K
	ktau.StartSystemDaemons(k)

	// A "closed-source" workload KTAUD monitors from outside: it cannot be
	// source-instrumented, which is exactly the case KTAUD exists for.
	app := k.Spawn("blackbox", func(u *ktau.UCtx) {
		for {
			u.Compute(3 * time.Millisecond)
			u.Syscall("sys_write", func(kc *ktau.KCtx) { kc.Use(15 * time.Microsecond) })
			u.Sleep(time.Millisecond)
		}
	}, ktau.SpawnOpts{Kind: ktau.KindUser})
	_ = app

	fs := ktau.NewProcFS(k.Ktau())
	cfg := ktau.KTAUDConfig{
		Interval: *interval,
		Rounds:   *rounds,
	}
	if *quiet {
		cfg.OnSnapshot = func(round int, snaps []ktau.Snapshot) {
			ktau.SummarizeRound(os.Stdout, round, c.Now().Duration(), snaps)
		}
	} else {
		cfg.Out = os.Stdout
	}
	daemon := k.Spawn("ktaud", ktau.KTAUD(fs, cfg), ktau.SpawnOpts{Kind: ktau.KindDaemon})

	if !c.RunUntilDone([]*ktau.Task{daemon}, 10*time.Minute) {
		fmt.Fprintln(os.Stderr, "ktaud: daemon did not finish its rounds")
		os.Exit(1)
	}
	fmt.Printf("ktaud: %d rounds complete at %v (virtual); daemon cpu=%v kernel=%v\n",
		*rounds, c.Now(), daemon.UserTime, daemon.KernTime)
}
