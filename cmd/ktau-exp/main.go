// Command ktau-exp regenerates the paper's evaluation: every table and
// figure of "Kernel-Level Measurement for Integrated Parallel Performance
// Views: the KTAU Project" (CLUSTER 2006) has a corresponding experiment id.
//
//	ktau-exp -exp table2            # Table 2 at full 128-rank scale
//	ktau-exp -exp fig5 -ranks 32    # Fig 5 at reduced scale
//	ktau-exp -exp all               # everything (several minutes)
//
// Absolute times are simulation-scale (runs are ~100x shorter than the
// paper's); the shapes — orderings, slowdown factors, CDF separations — are
// the reproduction targets. Paper-reported values are printed alongside
// where applicable.
//
// The scenario experiments (faults, serve, trace, traceov) are thin wrappers
// over the sweep-harness specs that cmd/ktau-sweep grids over; running them
// here executes exactly one cell and prints its rendered report.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"ktau"
)

type runner func(ranks int, out io.Writer) error

var experimentOrder = []string{
	"table2", "table3", "table4",
	"fig2a", "fig2c", "fig2e",
	"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"ionode",  // §6 future-work extension, not a paper table/figure
	"faults",  // monitored run under an injected fault plan, not a paper table/figure
	"serve",   // multi-tenant serving workload with tail-latency attribution
	"trace",   // cluster-wide streaming trace pipeline (merged Perfetto trace)
	"traceov", // trace-pipeline perturbation sweep (off/profile/full/sampled/adaptive)
}

// fixedScale marks the experiments that reproduce a measurement taken at one
// specific configuration; -ranks does not apply to them.
var fixedScale = map[string]bool{
	"table3": true, "table4": true,
	"fig2a": true, "fig2c": true, "fig2e": true,
	"ionode": true,
}

// traceOut is the -trace-out path; when set, the trace experiment writes
// the merged cluster trace there and validates the emitted JSON.
var traceOut string

// traceRate / traceAdaptive select the adaptive pipeline for the trace
// experiment: -trace-adaptive (or any -trace-rate below 1) swaps in
// sampling, backlog throttling and the collector-driven focus loop.
var (
	traceRate     float64
	traceAdaptive bool
)

// expParallel / expWorkers / expRacks mirror -parallel / -workers / -racks
// for the sweep-cell wrappers, whose specs take execution mode and topology
// per cell rather than globally.
var (
	expParallel bool
	expWorkers  int
	expRacks    int
)

// reportOut is the -report path. Cell-backed experiments (faults, serve,
// trace, traceov) get the full cross-layer view built from the cell's raw
// result; classic table/figure experiments get their captured text wrapped
// as a report. lastCell carries the cell from the runner to the builder.
var (
	reportOut string
	lastCell  *ktau.SweepCell
)

func render(fn func(ranks int) interface{ Render(io.Writer) }) runner {
	return func(ranks int, out io.Writer) error {
		fn(ranks).Render(out)
		return nil
	}
}

var experimentRunners = map[string]runner{
	"table2":  render(func(ranks int) interface{ Render(io.Writer) } { return ktau.RunTable2(ranks, 1) }),
	"table3":  render(func(int) interface{ Render(io.Writer) } { return ktau.RunTable3(16, 5, 2) }),
	"table4":  render(func(int) interface{ Render(io.Writer) } { return ktau.RunTable4(100_000) }),
	"fig2a":   render(func(int) interface{ Render(io.Writer) } { return ktau.RunFig2AB(1) }), // includes 2-B and 2-D
	"fig2c":   render(func(int) interface{ Render(io.Writer) } { return ktau.RunFig2C(1) }),
	"fig2e":   render(func(int) interface{ Render(io.Writer) } { return ktau.RunFig2E(1) }),
	"fig3":    render(func(ranks int) interface{ Render(io.Writer) } { return ktau.RunFig3(ranks) }),
	"fig4":    render(func(ranks int) interface{ Render(io.Writer) } { return ktau.RunFig4(ranks) }),
	"fig5":    render(func(ranks int) interface{ Render(io.Writer) } { return ktau.RunFig5(ranks) }),
	"fig6":    render(func(ranks int) interface{ Render(io.Writer) } { return ktau.RunFig6(ranks) }),
	"fig7":    render(func(ranks int) interface{ Render(io.Writer) } { return ktau.RunFig7(ranks) }),
	"fig8":    render(func(ranks int) interface{ Render(io.Writer) } { return ktau.RunFig8(ranks) }),
	"fig9":    render(func(ranks int) interface{ Render(io.Writer) } { return ktau.RunFig9(ranks) }),
	"fig10":   render(func(ranks int) interface{ Render(io.Writer) } { return ktau.RunFig10(ranks) }),
	"ionode":  render(func(int) interface{ Render(io.Writer) } { return ktau.RunIONodeStudy(1) }),
	"faults":  cellRunner("faults", nil),
	"serve":   cellRunner("serve", nil),
	"trace":   runTrace,
	"traceov": cellRunner("traceov", nil),
}

// cellRunner wraps one sweep-harness spec as a ktau-exp experiment: build
// the cell parameters from the command-line flags, run the single cell, and
// print its rendered report. mutate tweaks the parameters before the run.
func cellRunner(exp string, mutate func(*ktau.SweepParams)) runner {
	return func(ranks int, out io.Writer) error {
		cell, err := runExpCell(exp, ranks, mutate)
		if err != nil {
			return err
		}
		_, err = io.WriteString(out, cell.Text)
		return err
	}
}

// runExpCell executes one harness cell for an experiment id, surfacing
// non-ok statuses (panic, error) as errors.
func runExpCell(exp string, ranks int, mutate func(*ktau.SweepParams)) (*ktau.SweepCell, error) {
	p := ktau.SweepParams{
		Exp:      exp,
		Ranks:    ranks,
		Seed:     1,
		Parallel: expParallel,
		Workers:  expWorkers,
		Racks:    expRacks,
	}
	if mutate != nil {
		mutate(&p)
	}
	cell := ktau.RunSweepCell(context.Background(), p)
	if cell.Status != ktau.SweepOK {
		return nil, fmt.Errorf("%s: cell %s: %s", exp, cell.Status, cell.Err)
	}
	lastCell = cell
	return cell, nil
}

// runTrace executes the traced cluster run and, with -trace-out, writes the
// merged Chrome trace and verifies it: the file must parse as JSON and
// contain at least one correlated MPI flow event.
func runTrace(ranks int, out io.Writer) error {
	cell, err := runExpCell("trace", ranks, func(p *ktau.SweepParams) {
		p.Trace = "full"
		if traceAdaptive || traceRate < 1 {
			p.Trace = "adaptive"
			p.Rate = traceRate
		}
	})
	if err != nil {
		return err
	}
	if _, err := io.WriteString(out, cell.Text); err != nil {
		return err
	}
	if traceOut == "" {
		return nil
	}
	res := cell.Raw.(*ktau.ClusterTraceResult)
	f, err := os.Create(traceOut)
	if err != nil {
		return err
	}
	werr := res.WriteTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	blob, err := os.ReadFile(traceOut)
	if err != nil {
		return err
	}
	var events []map[string]any
	if err := json.Unmarshal(blob, &events); err != nil {
		return fmt.Errorf("emitted trace is not valid JSON: %w", err)
	}
	flows := 0
	for _, e := range events {
		if ph, _ := e["ph"].(string); ph == "s" {
			flows++
		}
	}
	if flows == 0 {
		return fmt.Errorf("emitted trace contains no MPI flow events")
	}
	fmt.Fprintf(out, "wrote %s: %d events, %d flow events (valid JSON)\n",
		traceOut, len(events), flows)
	return nil
}

func main() {
	exp := flag.String("exp", "", "experiment id (table2|table3|table4|fig2a|fig2c|fig2e|fig3..fig10|trace|traceov|serve|all)")
	ranks := flag.Int("ranks", 128, "MPI ranks for the Chiba-family experiments (cluster nodes for serve)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	parallel := flag.Bool("parallel", false, "run node engines on multiple host CPUs (results are byte-identical to serial)")
	workers := flag.Int("workers", 0, "host worker goroutines, implies -parallel when positive (0 = GOMAXPROCS)")
	racksFlag := flag.Int("racks", 0, "split the cluster into this many racks with a higher cross-rack latency (changes results; partitions the runner; cell-backed experiments only)")
	flag.StringVar(&traceOut, "trace-out", "",
		"write the merged cluster trace (Perfetto-loadable JSON) to this file (trace experiment)")
	flag.Float64Var(&traceRate, "trace-rate", 1,
		"adaptive sampling rate for the trace experiment (below 1 enables the adaptive pipeline)")
	flag.BoolVar(&traceAdaptive, "trace-adaptive", false,
		"run the trace experiment with the adaptive pipeline (sampling, throttling, focus loop)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	flag.StringVar(&reportOut, "report", "",
		"write a cross-layer performance report (.html or .md) for the experiment (single experiment only)")
	flag.Parse()

	ranksSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "ranks" {
			ranksSet = true
		}
	})

	// -workers only has an effect under -parallel; a positive count is an
	// unambiguous request for parallel execution, so imply it instead of
	// silently doing nothing.
	if *workers > 0 && !*parallel {
		fmt.Fprintf(os.Stderr, "ktau-exp: note: -workers %d implies -parallel\n", *workers)
		*parallel = true
	}
	if *parallel {
		ktau.SetParallel(true, *workers)
	}
	expParallel = *parallel
	expWorkers = *workers
	expRacks = *racksFlag

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ktau-exp:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ktau-exp:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ktau-exp:", err)
				return
			}
			defer f.Close()
			runtime.GC() // only reachable allocations: the steady-state picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ktau-exp:", err)
			}
		}()
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experimentOrder {
			fmt.Println("  " + id)
		}
		fmt.Println("  all")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentOrder
	} else if _, ok := experimentRunners[*exp]; !ok {
		known := make([]string, 0, len(experimentRunners))
		for id := range experimentRunners {
			known = append(known, id)
		}
		sort.Strings(known)
		fmt.Fprintf(os.Stderr, "ktau-exp: unknown experiment %q (known: %s)\n",
			*exp, strings.Join(known, ", "))
		os.Exit(2)
	}
	if reportOut != "" && len(ids) != 1 {
		fmt.Fprintln(os.Stderr, `ktau-exp: -report covers a single experiment; pick one instead of "all"`)
		os.Exit(2)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ktau-exp:", err)
			os.Exit(1)
		}
	}

	for _, id := range ids {
		if ranksSet && fixedScale[id] {
			fmt.Fprintf(os.Stderr, "ktau-exp: note: %s runs at a fixed scale; -ranks %d ignored\n",
				id, *ranks)
		}
		if err := runOne(id, *ranks, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "ktau-exp: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

// runOne executes a single experiment, teeing its output to <outDir>/<id>.txt
// when requested. The per-experiment file is closed (and its close error
// surfaced) even when the runner fails. With -report, the cross-layer view
// is written after the run: cell-backed experiments render the structured
// cell report, everything else wraps the captured text.
func runOne(id string, ranks int, outDir string) (err error) {
	start := time.Now()
	fmt.Printf("==== %s ====\n", id)
	var out io.Writer = os.Stdout
	if outDir != "" {
		f, cerr := os.Create(filepath.Join(outDir, id+".txt"))
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		out = io.MultiWriter(out, f)
	}
	var captured bytes.Buffer
	if reportOut != "" {
		out = io.MultiWriter(out, &captured)
	}
	if err := experimentRunners[id](ranks, out); err != nil {
		return err
	}
	if reportOut != "" {
		var rep *ktau.Report
		if lastCell != nil {
			rep = ktau.BuildCellReport(lastCell)
		} else {
			rep = ktau.BuildTextReport("ktau-exp "+id, captured.String())
		}
		if err := ktau.WriteReportFile(reportOut, rep); err != nil {
			return err
		}
		fmt.Println("report written:", reportOut)
	}
	fmt.Printf("---- %s done in %v wall ----\n\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}
