// Command ktau-exp regenerates the paper's evaluation: every table and
// figure of "Kernel-Level Measurement for Integrated Parallel Performance
// Views: the KTAU Project" (CLUSTER 2006) has a corresponding experiment id.
//
//	ktau-exp -exp table2            # Table 2 at full 128-rank scale
//	ktau-exp -exp fig5 -ranks 32    # Fig 5 at reduced scale
//	ktau-exp -exp all               # everything (several minutes)
//
// Absolute times are simulation-scale (runs are ~100x shorter than the
// paper's); the shapes — orderings, slowdown factors, CDF separations — are
// the reproduction targets. Paper-reported values are printed alongside
// where applicable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"ktau"
)

type runner func(ranks int, out io.Writer)

var experimentOrder = []string{
	"table2", "table3", "table4",
	"fig2a", "fig2c", "fig2e",
	"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"ionode",  // §6 future-work extension, not a paper table/figure
	"faults",  // monitored run under an injected fault plan, not a paper table/figure
	"serve",   // multi-tenant serving workload with tail-latency attribution
	"trace",   // cluster-wide streaming trace pipeline (merged Perfetto trace)
	"traceov", // trace-pipeline perturbation sweep (off/profile/full/sampled/adaptive)
}

// traceOut is the -trace-out path; when set, the trace experiment writes
// the merged cluster trace there and validates the emitted JSON.
var traceOut string

// traceRate / traceAdaptive select the adaptive pipeline for the trace
// experiment: -trace-adaptive (or any -trace-rate below 1) swaps in
// sampling, backlog throttling and the collector-driven focus loop.
var (
	traceRate     float64
	traceAdaptive bool
)

var experimentRunners = map[string]runner{
	"table2":  func(ranks int, out io.Writer) { ktau.RunTable2(ranks, 1).Render(out) },
	"table3":  func(ranks int, out io.Writer) { ktau.RunTable3(16, 5, 2).Render(out) },
	"table4":  func(ranks int, out io.Writer) { ktau.RunTable4(100_000).Render(out) },
	"fig2a":   func(ranks int, out io.Writer) { ktau.RunFig2AB(1).Render(out) }, // includes 2-B and 2-D
	"fig2c":   func(ranks int, out io.Writer) { ktau.RunFig2C(1).Render(out) },
	"fig2e":   func(ranks int, out io.Writer) { ktau.RunFig2E(1).Render(out) },
	"fig3":    func(ranks int, out io.Writer) { ktau.RunFig3(ranks).Render(out) },
	"fig4":    func(ranks int, out io.Writer) { ktau.RunFig4(ranks).Render(out) },
	"fig5":    func(ranks int, out io.Writer) { ktau.RunFig5(ranks).Render(out) },
	"fig6":    func(ranks int, out io.Writer) { ktau.RunFig6(ranks).Render(out) },
	"fig7":    func(ranks int, out io.Writer) { ktau.RunFig7(ranks).Render(out) },
	"fig8":    func(ranks int, out io.Writer) { ktau.RunFig8(ranks).Render(out) },
	"fig9":    func(ranks int, out io.Writer) { ktau.RunFig9(ranks).Render(out) },
	"fig10":   func(ranks int, out io.Writer) { ktau.RunFig10(ranks).Render(out) },
	"ionode":  func(ranks int, out io.Writer) { ktau.RunIONodeStudy(1).Render(out) },
	"faults":  func(ranks int, out io.Writer) { ktau.RunFaultStudy(ranks, 1).Render(out) },
	"serve":   func(ranks int, out io.Writer) { ktau.RunServeDefault(ranks, 1).Render(out) },
	"trace":   runTrace,
	"traceov": func(ranks int, out io.Writer) { ktau.RunTraceOverhead(ranks, 1).Render(out) },
}

// runTrace executes the traced cluster run and, with -trace-out, writes the
// merged Chrome trace and verifies it: the file must parse as JSON and
// contain at least one correlated MPI flow event.
func runTrace(ranks int, out io.Writer) {
	var res *ktau.ClusterTraceResult
	if traceAdaptive || traceRate < 1 {
		res = ktau.RunClusterTraceAdaptive(ranks, 1, traceRate)
	} else {
		res = ktau.RunClusterTrace(ranks, 1)
	}
	res.Render(out)
	if traceOut == "" {
		return
	}
	f, err := os.Create(traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ktau-exp:", err)
		os.Exit(1)
	}
	werr := res.WriteTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, "ktau-exp:", werr)
		os.Exit(1)
	}
	blob, err := os.ReadFile(traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ktau-exp:", err)
		os.Exit(1)
	}
	var events []map[string]any
	if err := json.Unmarshal(blob, &events); err != nil {
		fmt.Fprintf(os.Stderr, "ktau-exp: emitted trace is not valid JSON: %v\n", err)
		os.Exit(1)
	}
	flows := 0
	for _, e := range events {
		if ph, _ := e["ph"].(string); ph == "s" {
			flows++
		}
	}
	if flows == 0 {
		fmt.Fprintln(os.Stderr, "ktau-exp: emitted trace contains no MPI flow events")
		os.Exit(1)
	}
	fmt.Fprintf(out, "wrote %s: %d events, %d flow events (valid JSON)\n",
		traceOut, len(events), flows)
}

func main() {
	exp := flag.String("exp", "", "experiment id (table2|table3|table4|fig2a|fig2c|fig2e|fig3..fig10|trace|traceov|serve|all)")
	ranks := flag.Int("ranks", 128, "MPI ranks for the Chiba-family experiments (cluster nodes for serve)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	parallel := flag.Bool("parallel", false, "run node engines on multiple host CPUs (results are byte-identical to serial)")
	workers := flag.Int("workers", 0, "host worker goroutines with -parallel (0 = GOMAXPROCS)")
	flag.StringVar(&traceOut, "trace-out", "",
		"write the merged cluster trace (Perfetto-loadable JSON) to this file (trace experiment)")
	flag.Float64Var(&traceRate, "trace-rate", 1,
		"adaptive sampling rate for the trace experiment (below 1 enables the adaptive pipeline)")
	flag.BoolVar(&traceAdaptive, "trace-adaptive", false,
		"run the trace experiment with the adaptive pipeline (sampling, throttling, focus loop)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	flag.Parse()

	if *parallel {
		ktau.SetParallel(true, *workers)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ktau-exp:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ktau-exp:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ktau-exp:", err)
				return
			}
			defer f.Close()
			runtime.GC() // only reachable allocations: the steady-state picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ktau-exp:", err)
			}
		}()
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experimentOrder {
			fmt.Println("  " + id)
		}
		fmt.Println("  all")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentOrder
	} else if _, ok := experimentRunners[*exp]; !ok {
		known := make([]string, 0, len(experimentRunners))
		for id := range experimentRunners {
			known = append(known, id)
		}
		sort.Strings(known)
		fmt.Fprintf(os.Stderr, "ktau-exp: unknown experiment %q (known: %s)\n",
			*exp, strings.Join(known, ", "))
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		fmt.Printf("==== %s ====\n", id)
		var out io.Writer = os.Stdout
		var f *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "ktau-exp:", err)
				os.Exit(1)
			}
			var err error
			f, err = os.Create(filepath.Join(*outDir, id+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "ktau-exp:", err)
				os.Exit(1)
			}
			out = io.MultiWriter(os.Stdout, f)
		}
		experimentRunners[id](*ranks, out)
		if f != nil {
			f.Close()
		}
		fmt.Printf("---- %s done in %v wall ----\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
