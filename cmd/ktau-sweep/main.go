// Command ktau-sweep is the hypothesis-driven experiment driver: it expands
// a parameter grid into cells, runs them concurrently on a bounded worker
// pool with a mandatory per-cell wall-clock timeout, writes one structured
// JSON result per cell, and diffs the sweep against a committed baseline so
// behavioural or fingerprint regressions fail CI loudly.
//
//	ktau-sweep -list                          # named grids and specs
//	ktau-sweep -grid smoke                    # run the check.sh smoke grid
//	ktau-sweep -grid smoke -gate              # ...and gate against testdata/sweeps/smoke.json
//	ktau-sweep -grid smoke -update-baselines  # re-record the baseline
//	ktau-sweep -exp chiba -ranks 8,16 -workers 0,4 -faults none,degraded \
//	           -trace full,adaptive:0.25 -seeds 1,2    # ad-hoc grid
//	ktau-sweep -bench-gate                    # strict-parse + threshold-gate BENCH_*.json
//	ktau-sweep -grid smoke -report out.html   # cross-layer sweep report (.md also supported)
//	ktau-sweep -grid smoke -record PR9        # append to testdata/longitudinal/smoke.jsonl
//	ktau-sweep -grid smoke -trend trend.md    # render the longitudinal trend, no sweep run
//
// Every cell is bounded: a hung simulation is recorded as a "timeout" cell
// and the sweep completes with a full per-cell report; a panicking cell is
// recorded as "panic". Exit status is 0 only when every cell is ok (and,
// with -gate, matches the baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ktau/internal/harness"
	"ktau/internal/views"
)

func main() {
	var (
		gridName  = flag.String("grid", "", "named grid to run (see -list)")
		exp       = flag.String("exp", "", "spec for an ad-hoc grid (chiba|faults|serve|trace|traceov)")
		ranks     = flag.String("ranks", "", "ranks axis, e.g. 8,16 (default 8)")
		racks     = flag.String("racks", "", "racks axis: 0 = flat network, N > 1 = N racks (partitions the runner; default 0)")
		workers   = flag.String("workers", "", "workers axis: 0 = serial, N = parallel with N workers (default 0)")
		faults    = flag.String("faults", "", "fault-plan axis: none,degraded,crash (default none)")
		trace     = flag.String("trace", "", "trace axis: off,full,adaptive[:rate] (default off)")
		seeds     = flag.String("seeds", "", "seed axis, e.g. 1,42 (default 1)")
		timeout   = flag.Duration("timeout", harness.DefaultCellTimeout, "mandatory per-cell wall-clock timeout")
		jobs      = flag.Int("j", 1, "concurrently running cells")
		outDir    = flag.String("out", "", "write one JSON file per cell (plus report.json) to this directory")
		gate      = flag.Bool("gate", false, "diff the sweep against the committed baseline; non-zero exit on mismatch")
		update    = flag.Bool("update-baselines", false, "write the sweep as the new committed baseline")
		baseline  = flag.String("baseline", "", "baseline path (default testdata/sweeps/<grid>.json)")
		wallTol   = flag.Float64("wall-tol", -1, "override baseline wall-clock tolerance factor (0 disables the wall gate)")
		benchGate = flag.Bool("bench-gate", false, "strict-parse and threshold-gate the BENCH_*.json files, then exit")
		benchDir  = flag.String("bench-dir", ".", "directory holding the BENCH_*.json files for -bench-gate")
		list      = flag.Bool("list", false, "list named grids and registered specs, then exit")
		asJSON    = flag.Bool("json", false, "print the full sweep report as JSON")
		report    = flag.String("report", "", "comma-separated report paths (.html or .md); baseline deltas included when the baseline loads")
		record    = flag.String("record", "", "append the sweep (plus BENCH_*.json snapshots) to the grid's longitudinal history under this label")
		longDir   = flag.String("longdir", filepath.Join("testdata", "longitudinal"), "directory holding per-grid longitudinal histories")
		trendOut  = flag.String("trend", "", "render the grid's longitudinal trend report to this path and exit (no sweep is run)")
	)
	flag.Parse()

	if *list {
		fmt.Println("named grids:")
		grids := harness.NamedGrids()
		names := make([]string, 0, len(grids))
		for name := range grids {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			g := grids[name]
			fmt.Printf("  %-10s %s, %d cells\n", name, g.Exp, len(g.Cells()))
		}
		fmt.Println("specs:")
		for _, s := range harness.Specs() {
			fmt.Println("  " + s)
		}
		return
	}

	if *benchGate {
		violations := harness.GateBenchFiles(*benchDir, os.Stdout)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "ktau-sweep: bench gate:", v)
			}
			os.Exit(1)
		}
		fmt.Println("bench gate: all green")
		return
	}

	grid, err := buildGrid(*gridName, *exp, *ranks, *racks, *workers, *faults, *trace, *seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ktau-sweep:", err)
		os.Exit(2)
	}

	basePath := *baseline
	if basePath == "" {
		basePath = filepath.Join("testdata", "sweeps", grid.Name+".json")
	}

	if *trendOut != "" {
		entries, err := views.LoadTrend(views.TrendPath(*longDir, grid.Name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ktau-sweep:", err)
			os.Exit(1)
		}
		if err := views.WriteFile(*trendOut, views.BuildTrend(grid.Name, entries)); err != nil {
			fmt.Fprintln(os.Stderr, "ktau-sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("trend report written: %s (%d entries)\n", *trendOut, len(entries))
		return
	}

	start := time.Now()
	fmt.Printf("sweep %s: %d cells, per-cell timeout %v, %d concurrent\n",
		grid.Name, len(grid.Cells()), *timeout, *jobs)
	res, err := harness.RunSweep(grid, harness.SweepConfig{
		Timeout: *timeout,
		Jobs:    *jobs,
		OutDir:  *outDir,
		Log:     os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ktau-sweep:", err)
		os.Exit(1)
	}
	fmt.Printf("sweep %s: %d cells in %v wall\n", grid.Name, len(res.Cells),
		time.Since(start).Round(time.Millisecond))

	if *asJSON {
		printJSON(res)
	}

	if *report != "" {
		// Best-effort baseline: deltas appear inline when the committed
		// baseline loads; a brand-new grid renders plain metrics instead.
		b, err := harness.LoadBaseline(basePath)
		if err != nil {
			b = nil
		}
		rep := views.BuildSweep(res, b)
		for _, path := range strings.Split(*report, ",") {
			if path = strings.TrimSpace(path); path == "" {
				continue
			}
			if err := views.WriteFile(path, rep); err != nil {
				fmt.Fprintln(os.Stderr, "ktau-sweep:", err)
				os.Exit(1)
			}
			fmt.Println("report written:", path)
		}
	}

	if *record != "" {
		entry := views.NewTrendEntry(*record, res)
		if err := entry.CollectBench(*benchDir); err != nil {
			fmt.Fprintln(os.Stderr, "ktau-sweep:", err)
			os.Exit(1)
		}
		trendPath := views.TrendPath(*longDir, grid.Name)
		if err := views.AppendTrend(trendPath, entry); err != nil {
			fmt.Fprintln(os.Stderr, "ktau-sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("longitudinal: recorded %q in %s\n", *record, trendPath)
	}

	switch {
	case *update:
		b := harness.NewBaseline(res)
		if *wallTol >= 0 {
			b.WallTolX = *wallTol
		}
		if err := harness.SaveBaseline(basePath, b); err != nil {
			fmt.Fprintln(os.Stderr, "ktau-sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("baseline written: %s (%d cells)\n", basePath, len(b.Cells))
	case *gate:
		b, err := harness.LoadBaseline(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ktau-sweep:", err)
			os.Exit(1)
		}
		if *wallTol >= 0 {
			b.WallTolX = *wallTol
		}
		violations := harness.DiffBaseline(b, res)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "ktau-sweep: gate:", v)
			}
			os.Exit(1)
		}
		fmt.Printf("gate: %d cells match %s\n", len(res.Cells), basePath)
	default:
		if failed := res.Failed(); len(failed) > 0 {
			for _, f := range failed {
				fmt.Fprintln(os.Stderr, "ktau-sweep: cell failed:", f)
			}
			os.Exit(1)
		}
	}
}

// buildGrid resolves a named grid or assembles an ad-hoc one from axis
// flags. Axis flags refine a named grid too (e.g. -grid smoke -seeds 7).
func buildGrid(name, exp, ranks, racks, workers, faults, trace, seeds string) (harness.Grid, error) {
	var g harness.Grid
	if name != "" {
		named, ok := harness.NamedGrids()[name]
		if !ok {
			return g, fmt.Errorf("unknown grid %q (see -list)", name)
		}
		g = named
	} else if exp != "" {
		g = harness.Grid{Name: "adhoc-" + exp, Exp: exp}
	} else {
		return g, fmt.Errorf("nothing to do: pass -grid, -exp or -bench-gate (see -list)")
	}
	if exp != "" && name != "" && exp != g.Exp {
		return g, fmt.Errorf("-exp %q conflicts with grid %q (spec %q)", exp, name, g.Exp)
	}
	var err error
	if apply, e := harness.ParseIntAxis(ranks); e != nil {
		err = e
	} else if apply != nil {
		g.Ranks = apply
	}
	if err == nil {
		if apply, e := harness.ParseIntAxis(racks); e != nil {
			err = e
		} else if apply != nil {
			g.Racks = apply
		}
	}
	if err == nil {
		if apply, e := harness.ParseIntAxis(workers); e != nil {
			err = e
		} else if apply != nil {
			g.Workers = apply
		}
	}
	if err == nil {
		if apply, e := harness.ParseFaultAxis(faults); e != nil {
			err = e
		} else if apply != nil {
			g.Faults = apply
		}
	}
	if err == nil {
		if apply, e := harness.ParseTraceAxisList(trace); e != nil {
			err = e
		} else if apply != nil {
			g.Trace = apply
		}
	}
	if err == nil {
		if apply, e := harness.ParseSeedAxis(seeds); e != nil {
			err = e
		} else if apply != nil {
			g.Seeds = apply
		}
	}
	return g, err
}

func printJSON(res *harness.SweepResult) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ktau-sweep:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(data, '\n'))
}
