// Command kprof is a ParaProf-like text viewer for KTAU profiles in
// libKtau's ASCII format (as emitted by ktaud or WriteProfileASCII):
//
//	kprof profile.txt              # formatted listing
//	kprof -hz 450000000 p.txt      # convert cycles at a specific clock
//	kprof -diff before.txt after.txt   # what changed between two snapshots
//	kprof -groups profile.txt      # exclusive time per instrumentation group
//
// Files may contain multiple concatenated profiles (a ktaud dump); each is
// rendered in turn.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ktau"
	iktau "ktau/internal/ktau"
	"ktau/internal/libktau"
)

func main() {
	hz := flag.Int64("hz", 450_000_000, "CPU clock for cycle->time conversion")
	diff := flag.Bool("diff", false, "diff two profile files (before after)")
	groups := flag.Bool("groups", false, "summarise exclusive time per instrumentation group")
	flag.Parse()

	args := flag.Args()
	if *diff {
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "kprof -diff needs exactly two files")
			os.Exit(2)
		}
		a := loadOne(args[0])
		b := loadOne(args[1])
		fmt.Printf("diff %s -> %s (pid %d %s)\n", args[0], args[1], b.PID, b.Name)
		libktau.FormatDiff(os.Stdout, libktau.Diff(a, b), *hz)
		return
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: kprof [-hz N] [-diff|-groups] file...")
		os.Exit(2)
	}
	for _, path := range args {
		for _, snap := range loadAll(path) {
			if *groups {
				renderGroups(snap, *hz)
			} else {
				libktau.FormatProfile(os.Stdout, snap, *hz)
			}
			fmt.Println()
		}
	}
}

// loadAll reads every concatenated ASCII profile in a file.
func loadAll(path string) []iktauSnap {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kprof:", err)
		os.Exit(1)
	}
	defer f.Close()
	var out []iktauSnap
	for {
		snap, err := libktau.ParseASCII(f)
		if err == io.ErrUnexpectedEOF && len(out) > 0 {
			break
		}
		if err != nil {
			if len(out) == 0 {
				fmt.Fprintf(os.Stderr, "kprof: %s: %v\n", path, err)
				os.Exit(1)
			}
			break
		}
		out = append(out, snap)
	}
	return out
}

type iktauSnap = iktau.Snapshot

func loadOne(path string) iktauSnap {
	snaps := loadAll(path)
	if len(snaps) != 1 {
		fmt.Fprintf(os.Stderr, "kprof: %s holds %d profiles, want 1 for diff\n", path, len(snaps))
		os.Exit(1)
	}
	return snaps[0]
}

func renderGroups(s iktauSnap, hz int64) {
	totals := map[string]int64{}
	for _, e := range s.Events {
		totals[e.Group.String()] += e.Excl
	}
	names := make([]string, 0, len(totals))
	for g := range totals {
		names = append(names, g)
	}
	sort.Slice(names, func(i, j int) bool { return totals[names[i]] > totals[names[j]] })
	fmt.Printf("pid %d %s — exclusive time per instrumentation group\n", s.PID, s.Name)
	var labels []string
	var values []float64
	for _, g := range names {
		labels = append(labels, g)
		values = append(values, float64(totals[g])/float64(hz)*1e3)
	}
	ktau.BarChart(os.Stdout, "", labels, values, "ms", 44)
}
