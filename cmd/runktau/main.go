// Command runktau is the simulation-hosted analogue of the paper's runKtau
// client (§4.5): like time(1), it runs a program inside a freshly booted
// simulated node and, when the program exits, retrieves and prints the
// process's detailed KTAU kernel profile through libKtau.
//
// Built-in programs exercise different kernel subsystems:
//
//	spin      — pure user compute (scheduler/timer activity only)
//	syscalls  — a getpid loop (syscall path)
//	mixed     — compute + sleep + syscalls (voluntary switching)
//	pingpong  — two processes exchanging TCP messages across two nodes
//
// Example:
//
//	runktau -prog mixed -n 200 -groups SCHED,SYSCALL -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ktau"
)

func main() {
	prog := flag.String("prog", "mixed", "program to run: spin|syscalls|mixed|pingpong")
	n := flag.Int("n", 100, "iterations of the program's main loop")
	groups := flag.String("groups", "ALL", "instrumentation groups to enable (e.g. SCHED,TCP)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	trace := flag.Bool("trace", false, "dump the kernel trace buffer after the run")
	flag.Parse()

	g, err := ktau.ParseGroup(*groups)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	kp := ktau.DefaultKernelParams()
	traceCap := 0
	if *trace {
		traceCap = 16384
	}
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("node", 2),
		Kernel: kp,
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll, Boot: g,
			Mapping: true, RetainExited: true, TraceCapacity: traceCap,
		},
		Seed: *seed,
	})
	defer c.Shutdown()
	ktau.StartSystemDaemons(c.Node(0).K)

	fs := ktau.NewProcFS(c.Node(0).K.Ktau())
	var snap ktau.Snapshot
	body, extra := buildProgram(c, *prog, *n)
	task := c.Node(0).K.Spawn(*prog, ktau.RunKtau(fs, body, &snap), ktau.SpawnOpts{Kind: ktau.KindUser})

	tasks := append([]*ktau.Task{task}, extra...)
	if !c.RunUntilDone(tasks, 10*time.Minute) {
		fmt.Fprintln(os.Stderr, "runktau: program did not finish")
		os.Exit(1)
	}

	fmt.Printf("runktau: %q finished in %v (virtual)\n\n", *prog, task.Runtime())
	ktau.FormatProfile(os.Stdout, snap, kp.HZ)

	if *trace {
		h := ktau.OpenKtau(fs)
		dump, err := h.GetTrace(task.PID())
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace read:", err)
			os.Exit(1)
		}
		fmt.Printf("\nkernel trace: %d records (%d lost)\n", len(dump.Records), dump.Lost)
		reg := c.Node(0).K.Ktau().Reg
		for i, r := range dump.Records {
			if i >= 60 {
				fmt.Printf("  ... %d more\n", len(dump.Records)-i)
				break
			}
			fmt.Printf("  %12d %-6s %s\n", r.TSC, r.Kind, reg.Name(r.Ev))
		}
	}
}

// buildProgram returns the requested program body plus any helper tasks it
// needs (the pingpong peer).
func buildProgram(c *ktau.Cluster, name string, n int) (ktau.Program, []*ktau.Task) {
	switch name {
	case "spin":
		return func(u *ktau.UCtx) {
			for i := 0; i < n; i++ {
				u.Compute(2 * time.Millisecond)
			}
		}, nil
	case "syscalls":
		return func(u *ktau.UCtx) {
			for i := 0; i < n; i++ {
				u.Syscall("sys_getpid", nil)
			}
		}, nil
	case "mixed":
		return func(u *ktau.UCtx) {
			for i := 0; i < n; i++ {
				u.Compute(time.Millisecond)
				u.Syscall("sys_getpid", nil)
				u.Sleep(500 * time.Microsecond)
			}
		}, nil
	case "pingpong":
		ab, ba := ktau.Connect(c.Node(0).Stack, c.Node(1).Stack)
		peer := c.Node(1).K.Spawn("pong", func(u *ktau.UCtx) {
			for i := 0; i < n; i++ {
				ba.Recv(u, 1024)
				ba.Send(u, 1024)
			}
		}, ktau.SpawnOpts{Kind: ktau.KindUser})
		return func(u *ktau.UCtx) {
			for i := 0; i < n; i++ {
				ab.Send(u, 1024)
				ab.Recv(u, 1024)
			}
		}, []*ktau.Task{peer}
	default:
		fmt.Fprintf(os.Stderr, "runktau: unknown program %q\n", name)
		os.Exit(2)
		return nil, nil
	}
}
