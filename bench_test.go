// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablation benches for the design choices DESIGN.md calls out.
//
// Each BenchmarkTableN / BenchmarkFigN runs the corresponding experiment at
// the paper's scale (128 ranks for the Chiba family), prints the same
// rows/series the paper reports (once), and reports headline numbers as
// benchmark metrics. Experiment runs are deterministic and memoised, so a
// full `go test -bench=. -benchmem` executes each heavy configuration once.
//
//	go test -bench=BenchmarkTable2 -benchtime=1x
//	go test -bench=. -benchmem 2>&1 | tee bench_output.txt
package ktau_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"ktau"
	"ktau/internal/experiments"
	iktau "ktau/internal/ktau"
	"ktau/internal/procfs"
)

// benchRanks is the Chiba-City scale of the paper's §5.2 experiments.
const benchRanks = 128

var onceFor sync.Map

// printOnce renders an experiment's output exactly once per process.
func printOnce(key string, render func()) {
	once, _ := onceFor.LoadOrStore(key, &sync.Once{})
	once.(*sync.Once).Do(render)
}

// ---- Tables ----

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunTable2(benchRanks, 1)
		printOnce("table2", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		b.ReportMetric(res.Rows[1].LUDiffPct, "LU-anomaly-%")
		b.ReportMetric(res.Rows[4].LUDiffPct, "LU-pin-ibal-%")
		b.ReportMetric(res.Rows[1].SweepDiffPct, "Sw3D-anomaly-%")
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunTable3(16, 5, 2)
		printOnce("table3", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		for _, row := range res.Rows {
			switch row.Mode {
			case experiments.InstrKtauOff:
				b.ReportMetric(row.AvgSlowPct, "KtauOff-%")
			case experiments.InstrProfAll:
				b.ReportMetric(row.AvgSlowPct, "ProfAll-%")
			case experiments.InstrProfAllTau:
				b.ReportMetric(row.AvgSlowPct, "ProfAllTau-%")
			}
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	// The modelled distribution (what the simulator injects) plus the real
	// cost of this implementation's own Entry/Exit fast path.
	res := ktau.RunTable4(100_000)
	res.GoImplStartCycles, res.GoImplStopCycles = measureGoFastPath()
	printOnce("table4", func() {
		fmt.Println()
		res.Render(os.Stdout)
	})
	b.ReportMetric(res.StartMean, "start-cycles")
	b.ReportMetric(res.StopMean, "stop-cycles")

	// Also drive the fast path under the benchmark loop for ns/op.
	env := &benchEnv{}
	m := iktau.NewMeasurement(env, iktau.Options{Compiled: iktau.GroupAll, Boot: iktau.GroupAll})
	td := m.CreateTask(1, "bench")
	ev := m.Event("bench_event", iktau.GroupSyscall)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Entry(td, ev)
		m.Exit(td, ev)
	}
}

// ---- Figures ----

func BenchmarkFig2A(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig2AB(1)
		printOnce("fig2ab", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		var worst, rest float64
		for _, ns := range res.NodeSched {
			if ns.Node == res.DisturbedNode {
				worst = ns.Sched.Seconds()
			} else {
				rest += ns.Sched.Seconds() / float64(len(res.NodeSched)-1)
			}
		}
		b.ReportMetric(worst/rest, "disturbed/mean-sched-ratio")
	}
}

func BenchmarkFig2B(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig2AB(1)
		var overhead float64
		for _, p := range res.Node8Procs {
			if p.Name == "overhead" {
				overhead = p.CPUTime.Seconds()
			}
		}
		b.ReportMetric(overhead, "overhead-proc-kernel-s")
	}
}

func BenchmarkFig2C(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig2C(1)
		printOnce("fig2c", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		b.ReportMetric(res.Ranks[0].Invol.Seconds(), "LU0-invol-s")
		b.ReportMetric(res.Ranks[1].Vol.Seconds(), "LU1-vol-s")
	}
}

func BenchmarkFig2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig2AB(1)
		mr := res.Merged.Find("MPI_Recv()", false)
		if mr == nil {
			b.Fatal("no MPI_Recv in merged profile")
		}
		hz := float64(res.HZ)
		b.ReportMetric(float64(mr.UserOnlyExcl)/hz, "recv-user-only-s")
		b.ReportMetric(float64(mr.Excl)/hz, "recv-merged-s")
	}
}

func BenchmarkFig2E(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig2E(1)
		printOnce("fig2e", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		b.ReportMetric(float64(len(res.Timeline)), "events-in-send-window")
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig3(benchRanks)
		printOnce("fig3", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		b.ReportMetric(float64(res.Outliers[0]), "outlier-rank-lo")
		b.ReportMetric(float64(res.Outliers[1]), "outlier-rank-hi")
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig4(benchRanks)
		printOnce("fig4", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		b.ReportMetric(res.Mean["SCHED"].Seconds(), "mean-sched-under-recv-s")
		b.ReportMetric(res.LoVals["SCHED"].Seconds(), "rank61-sched-under-recv-s")
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig5(benchRanks)
		printOnce("fig5", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		anom := res.Curves[res.Order[4]]
		b.ReportMetric(ktau.Quantile(anom, 0.5)/1e6, "anomaly-median-vol-s")
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig6(benchRanks)
		printOnce("fig6", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		anom := res.Curves[res.Order[4]]
		max := 0.0
		for _, v := range anom {
			if v > max {
				max = v
			}
		}
		b.ReportMetric(max/1e6, "anomaly-max-invol-s")
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig7(benchRanks)
		printOnce("fig7", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		b.ReportMetric(res.Procs[0].CPUTime.Seconds(), "top-proc-cpu-s")
		b.ReportMetric(res.Procs[2].CPUTime.Seconds(), "third-proc-cpu-s")
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig8(benchRanks)
		printOnce("fig8", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		b.ReportMetric(res.Bimodal[res.Order[3]], "pinned-bimodality")
		b.ReportMetric(res.Bimodal[res.Order[1]], "ibal-bimodality")
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig9(benchRanks)
		printOnce("fig9", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		base := ktau.Quantile(res.Curves[res.Order[0]], 0.5)
		dual := ktau.Quantile(res.Curves[res.Order[2]], 0.5)
		b.ReportMetric(dual/base, "dual/base-median-ratio")
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ktau.RunFig10(benchRanks)
		printOnce("fig10", func() {
			fmt.Println()
			res.Render(os.Stdout)
		})
		base := ktau.Quantile(res.Curves[res.Order[0]], 0.5)
		dual := ktau.Quantile(res.Curves[res.Order[2]], 0.5)
		b.ReportMetric(100*(dual-base)/base, "percall-shift-%")
	}
}

// ---- ablation benches (design choices called out in DESIGN.md) ----

// benchEnv is a trivial ktau.Env for fast-path micro-benches.
type benchEnv struct{ c int64 }

func (e *benchEnv) Cycles() int64     { e.c += 7; return e.c }
func (e *benchEnv) AddOverhead(int64) {}

// measureGoFastPath times this implementation's own Entry/Exit pair and
// converts to 450 MHz cycles.
func measureGoFastPath() (startCyc, stopCyc float64) {
	env := &benchEnv{}
	m := iktau.NewMeasurement(env, iktau.Options{Compiled: iktau.GroupAll, Boot: iktau.GroupAll})
	td := m.CreateTask(1, "x")
	ev := m.Event("x", iktau.GroupSyscall)
	const n = 200_000
	t0 := time.Now()
	for i := 0; i < n; i++ {
		m.Entry(td, ev)
		m.Exit(td, ev)
	}
	perPair := time.Since(t0).Seconds() / n
	cycles := perPair * 450e6 / 2 // split evenly between start and stop
	return cycles, cycles
}

// BenchmarkAblationDisabledProbe measures the "compiled in but disabled"
// fast path: the basis of the paper's Ktau Off claim.
func BenchmarkAblationDisabledProbe(b *testing.B) {
	env := &benchEnv{}
	m := iktau.NewMeasurement(env, iktau.Options{Compiled: iktau.GroupAll, Boot: iktau.GroupNone})
	td := m.CreateTask(1, "x")
	ev := m.Event("x", iktau.GroupSyscall)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Entry(td, ev)
		m.Exit(td, ev)
	}
}

// BenchmarkAblationMappingOn / Off measure the cost of event mapping to
// user contexts on the instrumentation fast path.
func benchMapping(b *testing.B, mapping bool) {
	env := &benchEnv{}
	m := iktau.NewMeasurement(env, iktau.Options{
		Compiled: iktau.GroupAll, Boot: iktau.GroupAll, Mapping: mapping,
	})
	td := m.CreateTask(1, "x")
	ev := m.Event("x", iktau.GroupTCP)
	ctx := m.RegisterContext("routine")
	m.SetUserCtx(td, ctx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Entry(td, ev)
		m.Exit(td, ev)
	}
}

func BenchmarkAblationMappingOn(b *testing.B)  { benchMapping(b, true) }
func BenchmarkAblationMappingOff(b *testing.B) { benchMapping(b, false) }

// BenchmarkAblationTraceBuffer measures ring-buffer writes and reports the
// loss rate at a given capacity under a fixed write volume.
func BenchmarkAblationTraceBuffer(b *testing.B) {
	for _, capacity := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("cap=%d", capacity), func(b *testing.B) {
			r := iktau.NewRing(capacity)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Put(iktau.Record{TSC: int64(i), Ev: 1, Kind: iktau.KindEntry})
			}
			b.StopTimer()
			if r.Total() > 0 {
				b.ReportMetric(float64(r.Lost())/float64(r.Total())*100, "lost-%")
			}
		})
	}
}

// BenchmarkAblationIrqPolicy compares interrupt routing policies end to end
// on a small dual-process workload.
func BenchmarkAblationIrqPolicy(b *testing.B) {
	for _, balance := range []bool{false, true} {
		name := "cpu0-only"
		if balance {
			name = "round-robin"
		}
		b.Run(name, func(b *testing.B) {
			var exec time.Duration
			for i := 0; i < b.N; i++ {
				spec := ktau.DefaultChiba(16, 2)
				spec.Pinned = true
				spec.IRQBalance = balance
				res := experiments.Chiba(spec)
				exec = res.Exec
			}
			b.ReportMetric(exec.Seconds(), "virtual-exec-s")
		})
	}
}

// BenchmarkAblationProcfs measures the session-less two-call protocol
// (size query plus read) against the work of a single pre-sized read,
// quantifying the cost of the paper's no-state design choice.
func BenchmarkAblationProcfs(b *testing.B) {
	env := &benchEnv{}
	m := iktau.NewMeasurement(env, iktau.Options{Compiled: iktau.GroupAll, Boot: iktau.GroupAll})
	td := m.CreateTask(1, "x")
	for i := 0; i < 40; i++ {
		ev := m.Event(fmt.Sprintf("event_%d", i), iktau.GroupSyscall)
		m.Entry(td, ev)
		m.Exit(td, ev)
	}
	fs := procfs.New(m)
	b.Run("two-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			size, err := fs.ProfileSize(1)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, size)
			if _, err := fs.ProfileRead(1, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("presized", func(b *testing.B) {
		size, _ := fs.ProfileSize(1)
		buf := make([]byte, size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fs.ProfileRead(1, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimEngine measures raw event throughput of the DES engine.
func BenchmarkSimEngine(b *testing.B) {
	eng := ktau.NewEngine()
	var fire func()
	count := 0
	fire = func() {
		count++
		if count < b.N {
			eng.After(time.Microsecond, fire)
		}
	}
	b.ResetTimer()
	eng.After(time.Microsecond, fire)
	eng.Run()
}

// BenchmarkContextSwitch measures the simulator's cost of one full
// block/wake/context-switch cycle between two tasks.
func BenchmarkContextSwitch(b *testing.B) {
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("n", 1),
		Kernel: ktau.DefaultKernelParams(),
		Ktau:   ktau.MeasurementOptions{Compiled: ktau.GroupAll, Boot: ktau.GroupAll},
		Seed:   1,
	})
	defer c.Shutdown()
	k := c.Node(0).K
	wqA := ktau.NewWaitQueueNamed("a")
	wqB := ktau.NewWaitQueueNamed("b")
	turnA := true
	n := b.N
	ta := k.Spawn("a", func(u *ktau.UCtx) {
		for i := 0; i < n; i++ {
			u.Syscall("sys_read", func(kc *ktau.KCtx) {
				for !turnA {
					kc.Wait(wqA)
				}
				turnA = false
				wqB.WakeAll(u.Kernel())
			})
		}
	}, ktau.SpawnOpts{Kind: ktau.KindUser, Affinity: ktau.AffinityCPU(0)})
	tb := k.Spawn("b", func(u *ktau.UCtx) {
		for i := 0; i < n; i++ {
			u.Syscall("sys_read", func(kc *ktau.KCtx) {
				for turnA {
					kc.Wait(wqB)
				}
				turnA = true
				wqA.WakeAll(u.Kernel())
			})
		}
	}, ktau.SpawnOpts{Kind: ktau.KindUser, Affinity: ktau.AffinityCPU(0)})
	b.ResetTimer()
	c.RunUntilDone([]*ktau.Task{ta, tb}, time.Hour)
}

// BenchmarkAblationWorkloadSpectrum measures how the ProfAll instrumentation
// overhead depends on the workload's program-OS interaction rate: EP (almost
// no kernel interaction) through LU and Sweep3D (point-to-point wavefronts)
// to CG (collective-heavy). The paper's Table 3 measured only LU and
// Sweep3D; this sweep shows the overhead is a property of the interaction
// rate, not the tool.
func BenchmarkAblationWorkloadSpectrum(b *testing.B) {
	run := func(work string, instr experiments.InstrMode, seed uint64) time.Duration {
		const ranks = 16
		c := ktau.NewCluster(ktau.ClusterConfig{
			Nodes:  ktau.UniformNodes("n", ranks),
			Kernel: ktau.DefaultKernelParams(),
			Ktau:   instr.KtauOptions(),
			Seed:   seed,
		})
		defer c.Shutdown()
		specs := make([]ktau.RankSpec, ranks)
		for i := range specs {
			specs[i] = ktau.RankSpec{Stack: c.Node(i).Stack}
		}
		topts := ktau.DefaultTauOptions()
		topts.Enabled = instr.TauEnabled()
		w := ktau.NewWorld(specs, topts)
		var body func(*ktau.Rank)
		switch work {
		case "EP":
			cfg := ktau.DefaultEPConfig(ranks)
			cfg.Compute = 400 * time.Millisecond
			body = ktau.EP(cfg)
		case "CG":
			cfg := ktau.DefaultCGConfig(ranks)
			cfg.Iters = 2
			body = ktau.CG(cfg)
		case "Sweep3D":
			cfg := ktau.DefaultSweepConfig(ranks)
			cfg.Iters = 3
			body = ktau.Sweep3D(cfg)
		default:
			cfg := ktau.DefaultLUConfig(ranks)
			cfg.Iters = 4
			body = ktau.LU(cfg)
		}
		tasks := w.Launch(work, body)
		if !c.RunUntilDone(tasks, 20*time.Minute) {
			b.Fatalf("%s did not finish", work)
		}
		return c.Now().Duration()
	}
	for _, work := range []string{"EP", "LU", "Sweep3D", "CG"} {
		work := work
		b.Run(work, func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				var base, instr float64
				for rep := uint64(0); rep < 3; rep++ {
					base += run(work, experiments.InstrBase, 100+rep).Seconds()
					instr += run(work, experiments.InstrProfAllTau, 100+rep).Seconds()
				}
				slow = 100 * (instr - base) / base
			}
			b.ReportMetric(slow, "slowdown-%")
		})
	}
}

// benchRacks is the topology of the parallel worker sweep: 8 racks of 16
// nodes, so the partitioned runner splits the 128 engines into 8
// independently advancing synchronization groups.
const benchRacks = 8

// benchWorkerSweep is the workers axis of BenchmarkParallelChiba; the first
// entry must be 1 (the serial baseline every other row is compared to).
var benchWorkerSweep = []int{1, 2, 4, 8}

// BenchmarkParallelChiba sweeps the same racked 128-node Chiba LU
// configuration across runner worker counts — workers=1 serially, then each
// parallel worker count under GOMAXPROCS=min(workers, host CPUs) — checks
// every row's virtual results are byte-identical to the serial baseline, and
// writes one row per {workers, GOMAXPROCS} configuration to
// BENCH_parallel.json. On a near-single-core host every speedup is ~1x by
// construction; the JSON records host_cpus so the bench gate knows whether
// the speedup thresholds are meaningful (it skips loudly when they are not).
func BenchmarkParallelChiba(b *testing.B) {
	type result struct {
		wall time.Duration
		exec time.Duration
		fp   string
	}
	run := func(workers int) result {
		spec := ktau.DefaultChiba(benchRanks, 1)
		spec.Seed = 7
		spec.Racks = benchRacks
		spec.Parallel = workers > 1
		spec.Workers = workers
		t0 := time.Now()
		res := ktau.RunChiba(spec)
		if !res.Completed {
			b.Fatal("chiba run did not complete")
		}
		// fmt prints maps in sorted key order, so this renders every
		// per-rank and per-node metric deterministically.
		fp := fmt.Sprintf("%v %+v %+v", res.Exec, res.Ranks, res.Nodes)
		return result{wall: time.Since(t0), exec: res.Exec, fp: fp}
	}
	hostCPUs := runtime.NumCPU()
	var serial result
	var rows []map[string]any
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, workers := range benchWorkerSweep {
			gomaxprocs := min(workers, hostCPUs)
			prev := runtime.GOMAXPROCS(gomaxprocs)
			r := run(workers)
			runtime.GOMAXPROCS(prev)
			if workers == 1 {
				serial = r
			}
			if r.exec != serial.exec || r.fp != serial.fp {
				b.Fatalf("workers=%d run diverged from serial (exec %v vs %v)", workers, r.exec, serial.exec)
			}
			rows = append(rows, map[string]any{
				"workers":           workers,
				"gomaxprocs":        gomaxprocs,
				"wall_s":            r.wall.Seconds(),
				"speedup":           serial.wall.Seconds() / r.wall.Seconds(),
				"identical_results": true,
			})
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(serial.wall.Seconds(), "serial-wall-s")
	b.ReportMetric(last["wall_s"].(float64), fmt.Sprintf("wall-%dw-s", last["workers"].(int)))
	b.ReportMetric(last["speedup"].(float64), fmt.Sprintf("speedup-%dw-x", last["workers"].(int)))
	out := map[string]any{
		"benchmark":      "128-node 8-rack Chiba LU, partitioned-runner worker sweep vs serial",
		"ranks":          benchRanks,
		"nodes":          benchRanks,
		"racks":          benchRacks,
		"host_cpus":      hostCPUs,
		"serial_wall_s":  serial.wall.Seconds(),
		"virtual_exec_s": serial.exec.Seconds(),
		"rows":           rows,
	}
	writeBench(b, "BENCH_parallel.json", out)
}

// BenchmarkTraceOverhead runs the trace-pipeline perturbation sweep — the
// same Chiba LU job with collection off, with live profile monitoring, with
// the full streaming trace pipeline, at fixed sampling rates, and with the
// adaptive (always-on) configuration — and writes the virtual-time slowdown
// of every configuration to BENCH_trace.json. check.sh gates on the
// headline slowdowns.
func BenchmarkTraceOverhead(b *testing.B) {
	var res *ktau.TraceOverheadResult
	for i := 0; i < b.N; i++ {
		res = ktau.RunTraceOverhead(16, 1)
	}
	printOnce("traceov", func() {
		fmt.Println()
		res.Render(os.Stdout)
	})
	out := map[string]any{
		"benchmark": "Chiba LU trace-pipeline perturbation sweep (off / profile / full trace / sampled / adaptive)",
		"ranks":     res.Ranks,
	}
	rows := make([]map[string]any, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, map[string]any{
			"config":         r.Config,
			"rate":           r.Rate,
			"adaptive":       r.Adaptive,
			"virtual_exec_s": r.Exec.Seconds(),
			"slowdown_pct":   r.SlowPct,
			"trace_records":  r.Records,
			"sampled_out":    r.SampledOut,
			"wire_bytes":     r.WireBytes,
		})
		switch r.Config {
		case "Profile":
			b.ReportMetric(r.SlowPct, "profile-%")
			out["profile_slowdown_pct"] = r.SlowPct
		case "Profile+Trace":
			b.ReportMetric(r.SlowPct, "profile+trace-%")
			b.ReportMetric(float64(r.Records), "trace-records")
			out["full_trace_slowdown_pct"] = r.SlowPct
		case "Profile+Trace(adaptive)":
			b.ReportMetric(r.SlowPct, "adaptive-%")
			out["adaptive_slowdown_pct"] = r.SlowPct
		}
	}
	out["rows"] = rows
	writeBench(b, "BENCH_trace.json", out)
}

// BenchmarkIONode runs the §6 I/O-node characterization extension: compute
// clients streaming checkpoints to an I/O node under two storage
// configurations, decomposed by KTAU's kernel-wide view.
func BenchmarkIONode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := ktau.RunIONodeStudy(1)
		printOnce("ionode", func() {
			fmt.Println()
			s.Render(os.Stdout)
		})
		b.ReportMetric(s.Slow.Exec.Seconds(), "slow-disk-exec-s")
		b.ReportMetric(s.Fast.Exec.Seconds(), "fast-disk-exec-s")
	}
}
