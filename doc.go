// Package ktau is a full reproduction, in simulation, of the KTAU system
// from "Kernel-Level Measurement for Integrated Parallel Performance Views:
// the KTAU Project" (Nataraj, Malony, Shende, Morris — CLUSTER 2006).
//
// KTAU instruments the Linux kernel's scheduling, interrupt, bottom-half,
// system-call and network paths with entry/exit, atomic and context-mapped
// measurement points, keeps per-process profile and trace structures hung
// off the process control block, and exports them through /proc/ktau to
// user-level clients (libKtau, the KTAUD daemon, runKtau, and the TAU
// measurement system), enabling both a kernel-wide and a process-centric
// performance perspective, and merged user/kernel views.
//
// Go cannot patch a Linux kernel, so the substrate here is a deterministic
// discrete-event simulation of a cluster of Linux-like nodes: per-CPU
// runqueues with timeslices and preemption, voluntary/involuntary context
// switches, timer and NIC interrupts with softirq (bottom-half) processing,
// a TCP path over switched Ethernet, an MPI layer, and the NPB LU / ASCI
// Sweep3D workloads the paper measures. The KTAU measurement system itself
// — instrumentation macros, event mapping, control, procfs protocol,
// libKtau, clients — is implemented directly as the paper describes, and
// measurement overhead feeds back into virtual time, so the perturbation
// study (Table 3) is reproducible.
//
// This package is the public facade: it re-exports the simulation substrate
// (Cluster, Kernel, Task), the measurement system (Measurement, Snapshot,
// instrumentation groups), the user-level side (Tau profiler, merged
// profiles), the clients (ProcFS, Handle, KTAUD, RunKtau), the workloads
// and the experiment harness that regenerates every table and figure of the
// paper's evaluation. See the examples/ directory for runnable programs and
// bench_test.go for the per-table/per-figure benchmarks.
package ktau
