#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md): every PR must leave this green.
#
#   gofmt      -- all Go sources formatted
#   go vet     -- static checks
#   go build   -- whole module compiles
#   go test    -- full test suite
#   go test -race  -- data-race check on the non-simulation packages
#                     (packages driven by the discrete-event engine serialise
#                     their goroutines through it, so the full suite under
#                     -race is slow without adding coverage; the pure
#                     data-structure packages are the ones with real
#                     concurrency surface)
#   ktau-sweep -- the smoke grid runs under a per-cell timeout and is diffed
#                 against the committed baseline (testdata/sweeps/smoke.json);
#                 the cross-layer sweep report is diffed byte-for-byte against
#                 the committed golden (testdata/views/smoke_report.md); the
#                 longitudinal trend report must render from the committed
#                 history (testdata/longitudinal/); and the BENCH_*.json files
#                 are strict-parsed and threshold-gated (no sed/awk scraping).
set -e
cd "$(dirname "$0")/.."

# Every mktemp path is appended to tmpfiles so an early exit (set -e) still
# cleans up.
tmpfiles=""
trap 'rm -f $tmpfiles' EXIT

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (non-simulation packages) =="
go test -race ./internal/analysis/ ./internal/ktau/ ./internal/ktrace/ ./internal/procfs/

echo "== go test -race (fault injection + pipeline) =="
go test -race ./internal/faultsim/ ./internal/perfmon/

echo "== go test -race (partitioned runner + cluster + serial/parallel cross-check) =="
# The sim package covers the partitioned runner itself (latency-matrix
# partitioning, epoch rendezvous, merge order, zero-alloc steady state); the
# experiments cross-checks then pin byte identity of the full monitored,
# fault-injected workloads against serial on both the flat topology (the
# classic single-group runner, 4 workers) and a racked one that partitions
# the runner, at workers {2, 3, 8} — more groups than workers, workers that
# don't divide groups, and more workers than groups.
go test -race ./internal/sim/ ./internal/cluster/
go test -race ./internal/experiments/ -run TestParallelMatchesSerialByteForByte

echo "== go test -race (trace pipeline + cluster-trace determinism) =="
go test -race ./internal/tracepipe/
go test -race ./internal/experiments/ -run 'TestClusterTraceParallelMatchesSerial|TestAdaptiveTraceParallelMatchesSerial'

echo "== go test -race (serving workload + serve serial/parallel cross-check) =="
go test -race ./internal/tcpsim/ ./internal/servesim/
go test -race ./internal/experiments/ -run TestServeParallelMatchesSerialByteForByte

echo "== go test -race (sweep harness: watchdog + concurrent cells) =="
go test -race ./internal/harness/

echo "== sweep smoke grid (per-cell timeout, gated against committed baseline) =="
# 8 ranks x {serial, parallel} x {no faults, DegradedPlan} x {full, adaptive
# trace}, one seed. Every cell's profile/store/trace fingerprints must match
# testdata/sweeps/smoke.json exactly — including serial and parallel cells of
# the same configuration matching each other (the determinism invariant).
# The cross-layer report rendered from the same sweep must be byte-identical
# to the committed golden: reports are a deterministic function of the grid,
# the seeds and the baseline, so report drift is behaviour drift.
# After an intentional behaviour change, re-record with:
#   go run ./cmd/ktau-sweep -grid smoke -update-baselines \
#       -report testdata/views/smoke_report.md
report_tmp=$(mktemp /tmp/ktau_smoke_report_XXXXXX.md)
report_html_tmp=$(mktemp /tmp/ktau_smoke_report_XXXXXX.html)
tmpfiles="$tmpfiles $report_tmp $report_html_tmp"
go run ./cmd/ktau-sweep -grid smoke -timeout 90s -gate \
    -report "$report_tmp,$report_html_tmp"
if ! cmp -s "$report_tmp" testdata/views/smoke_report.md; then
    echo "check.sh: smoke sweep report drifted from testdata/views/smoke_report.md" >&2
    diff -u testdata/views/smoke_report.md "$report_tmp" >&2 || true
    exit 1
fi
grep -q '<!DOCTYPE html>' "$report_html_tmp" || {
    echo "check.sh: smoke sweep HTML report was not written" >&2
    exit 1
}

echo "== sweep parscale grid (racked topology, gated against committed baseline) =="
# 8 ranks on a 4-rack topology x workers {serial, 2, 3, 8} x DegradedPlan x
# adaptive trace. The racked cells run the *partitioned* runner (per-rack
# groups, epoch rendezvous); all four cells must carry the one committed
# fingerprint in testdata/sweeps/parscale.json — the byte-identity
# invariant, held in the harness across worker counts.
go run ./cmd/ktau-sweep -grid parscale -timeout 90s -gate

echo "== longitudinal trend report (renders from testdata/longitudinal) =="
trend_tmp=$(mktemp /tmp/ktau_trend_XXXXXX.md)
tmpfiles="$tmpfiles $trend_tmp"
go run ./cmd/ktau-sweep -grid smoke -trend "$trend_tmp"
grep -q 'KTAU longitudinal report: smoke' "$trend_tmp" || {
    echo "check.sh: trend report missing title" >&2
    exit 1
}

echo "== fault-plan smoke test =="
go run ./cmd/ktau-exp -exp faults -ranks 8 > /dev/null

echo "== serving-workload smoke test (rogue daemon must be fingered) =="
serve_out=$(go run ./cmd/ktau-exp -exp serve -ranks 8)
case "$serve_out" in
*"fingered as the top competing process"*) ;;
*)
    echo "check.sh: serve smoke run did not finger the rogue daemon" >&2
    echo "$serve_out" >&2
    exit 1
    ;;
esac

echo "== trace-pipeline smoke test (merged trace must be valid JSON with flow events) =="
trace_tmp=$(mktemp /tmp/ktau_trace_XXXXXX.json)
tmpfiles="$tmpfiles $trace_tmp"
go run ./cmd/ktau-exp -exp trace -ranks 8 -trace-out "$trace_tmp" > /dev/null

echo "== adaptive trace smoke test (sampled pipeline must still emit flow events) =="
trace_adaptive_tmp=$(mktemp /tmp/ktau_trace_adaptive_XXXXXX.json)
tmpfiles="$tmpfiles $trace_adaptive_tmp"
go run ./cmd/ktau-exp -exp trace -ranks 8 -trace-rate 0.25 -trace-out "$trace_adaptive_tmp" > /dev/null

echo "== benchmark smoke (writes BENCH_parallel.json) =="
go test -run '^$' -bench BenchmarkParallelChiba -benchtime=1x .

echo "== trace perturbation sweep (writes BENCH_trace.json) =="
go test -run '^$' -bench BenchmarkTraceOverhead -benchtime=1x .

echo "== core hot-path benchmarks (writes BENCH_core.json) =="
go test -run '^$' -bench 'BenchmarkEngineThroughput|BenchmarkKtauEventPath|BenchmarkFrameEncode' -benchmem .
go test -run '^$' -bench BenchmarkCoreHotPath -benchtime=1x .

echo "== serving-workload benchmark (writes BENCH_serve.json) =="
go test -run '^$' -bench BenchmarkServe -benchtime=1x .

echo "== bench gate (strict-parse + thresholds on all BENCH_*.json) =="
# Replaces the old sed/awk scraping: every gated file must exist, parse with
# no duplicate keys, and hold its thresholds (profile <= 5%, full trace
# <= 25%, adaptive < 5%, Chiba speedup >= 1.25x, serve p99 <= 1.25x and
# throughput >= 0.80x of the recorded baselines). Missing or renamed keys
# fail loudly instead of producing an empty capture.
#
# BENCH_parallel.json gets the conditional multi-core speedup gate: every
# row must have identical_results (enforced unconditionally), and on hosts
# with >= 4 CPUs speedup must strictly increase with worker count up to the
# core count; with >= 8 CPUs the 8-worker row must also clear the 4x floor.
# On smaller hosts the speedup portion SKIPS LOUDLY (a "SPEEDUP GATE
# SKIPPED" line) rather than silently passing.
go run ./cmd/ktau-sweep -bench-gate

echo "check.sh: all green"
