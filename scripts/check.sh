#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md): every PR must leave this green.
#
#   gofmt      -- all Go sources formatted
#   go vet     -- static checks
#   go build   -- whole module compiles
#   go test    -- full test suite
#   go test -race  -- data-race check on the non-simulation packages
#                     (packages driven by the discrete-event engine serialise
#                     their goroutines through it, so the full suite under
#                     -race is slow without adding coverage; the pure
#                     data-structure packages are the ones with real
#                     concurrency surface)
set -e
cd "$(dirname "$0")/.."

# Every mktemp path is appended to tmpfiles so an early exit (set -e) still
# cleans up.
tmpfiles=""
trap 'rm -f $tmpfiles' EXIT

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (non-simulation packages) =="
go test -race ./internal/analysis/ ./internal/ktau/ ./internal/ktrace/ ./internal/procfs/

echo "== go test -race (fault injection + pipeline) =="
go test -race ./internal/faultsim/ ./internal/perfmon/

echo "== go test -race (parallel runner + cluster + serial/parallel cross-check) =="
go test -race ./internal/sim/ ./internal/cluster/
go test -race ./internal/experiments/ -run TestParallelMatchesSerialByteForByte

echo "== go test -race (trace pipeline + cluster-trace determinism) =="
go test -race ./internal/tracepipe/
go test -race ./internal/experiments/ -run 'TestClusterTraceParallelMatchesSerial|TestAdaptiveTraceParallelMatchesSerial'

echo "== go test -race (serving workload + serve serial/parallel cross-check) =="
go test -race ./internal/tcpsim/ ./internal/servesim/
go test -race ./internal/experiments/ -run TestServeParallelMatchesSerialByteForByte

echo "== fault-plan smoke test =="
go run ./cmd/ktau-exp -exp faults -ranks 8 > /dev/null

echo "== serving-workload smoke test (rogue daemon must be fingered) =="
serve_out=$(go run ./cmd/ktau-exp -exp serve -ranks 8)
case "$serve_out" in
*"fingered as the top competing process"*) ;;
*)
    echo "check.sh: serve smoke run did not finger the rogue daemon" >&2
    echo "$serve_out" >&2
    exit 1
    ;;
esac

echo "== trace-pipeline smoke test (merged trace must be valid JSON with flow events) =="
trace_tmp=$(mktemp /tmp/ktau_trace_XXXXXX.json)
tmpfiles="$tmpfiles $trace_tmp"
go run ./cmd/ktau-exp -exp trace -ranks 8 -trace-out "$trace_tmp" > /dev/null

echo "== adaptive trace smoke test (sampled pipeline must still emit flow events) =="
trace_adaptive_tmp=$(mktemp /tmp/ktau_trace_adaptive_XXXXXX.json)
tmpfiles="$tmpfiles $trace_adaptive_tmp"
go run ./cmd/ktau-exp -exp trace -ranks 8 -trace-rate 0.25 -trace-out "$trace_adaptive_tmp" > /dev/null

echo "== benchmark smoke (writes BENCH_parallel.json) =="
go test -run '^$' -bench BenchmarkParallelChiba -benchtime=1x .

echo "== trace perturbation sweep (writes BENCH_trace.json, gates slowdowns) =="
go test -run '^$' -bench BenchmarkTraceOverhead -benchtime=1x .
if [ ! -f BENCH_trace.json ]; then
    echo "check.sh: BENCH_trace.json was not written" >&2
    exit 1
fi
# Virtual-time slowdowns are deterministic for the fixed seed. The profile
# pipeline must stay under 5% (the paper's daemon budget), the full trace
# under a 25% regression ceiling, and the adaptive (always-on) configuration
# under 5% — the headline this sweep exists to defend.
profile_pct=$(sed -n 's/.*"profile_slowdown_pct": \([0-9.eE+-]*\).*/\1/p' BENCH_trace.json)
full_pct=$(sed -n 's/.*"full_trace_slowdown_pct": \([0-9.eE+-]*\).*/\1/p' BENCH_trace.json)
adaptive_pct=$(sed -n 's/.*"adaptive_slowdown_pct": \([0-9.eE+-]*\).*/\1/p' BENCH_trace.json)
if [ -z "$profile_pct" ] || [ -z "$full_pct" ] || [ -z "$adaptive_pct" ]; then
    echo "check.sh: slowdown keys missing from BENCH_trace.json" >&2
    exit 1
fi
if ! awk "BEGIN { exit !($profile_pct <= 5) }"; then
    echo "check.sh: profile slowdown regressed: ${profile_pct}% > 5%" >&2
    exit 1
fi
if ! awk "BEGIN { exit !($full_pct <= 25) }"; then
    echo "check.sh: full-trace slowdown regressed: ${full_pct}% > 25%" >&2
    exit 1
fi
if ! awk "BEGIN { exit !($adaptive_pct < 5) }"; then
    echo "check.sh: adaptive trace slowdown ${adaptive_pct}% >= 5% — always-on budget blown" >&2
    exit 1
fi
echo "trace sweep slowdowns: profile ${profile_pct}%, full ${full_pct}%, adaptive ${adaptive_pct}%"

echo "== core hot-path benchmarks (writes BENCH_core.json, gates Chiba speedup) =="
go test -run '^$' -bench 'BenchmarkEngineThroughput|BenchmarkKtauEventPath|BenchmarkFrameEncode' -benchmem .
go test -run '^$' -bench BenchmarkCoreHotPath -benchtime=1x .
if [ ! -f BENCH_core.json ]; then
    echo "check.sh: BENCH_core.json was not written" >&2
    exit 1
fi
# The serial 32-node Chiba run must stay well ahead of the recorded seed
# baseline: regressing the pooled hot path by more than 20% of the baseline
# time (speedup dropping below 1.25x) fails the gate.
speedup=$(sed -n 's/.*"chiba_speedup_x": \([0-9.]*\).*/\1/p' BENCH_core.json)
if [ -z "$speedup" ]; then
    echo "check.sh: no chiba speedup_x recorded in BENCH_core.json" >&2
    exit 1
fi
if ! awk "BEGIN { exit !($speedup >= 1.25) }"; then
    echo "check.sh: serial Chiba speedup regressed: ${speedup}x < 1.25x over seed baseline" >&2
    exit 1
fi
echo "serial Chiba speedup over seed baseline: ${speedup}x"

echo "== serving-workload benchmark (writes BENCH_serve.json, gates p99 and req/s) =="
go test -run '^$' -bench BenchmarkServe -benchtime=1x .
if [ ! -f BENCH_serve.json ]; then
    echo "check.sh: BENCH_serve.json was not written" >&2
    exit 1
fi
# Both metrics are virtual-time quantities, deterministic for the benchmark's
# fixed seed: the tail may not stretch more than 25% past the recorded
# baseline, and completed throughput may not drop below 80% of it.
p99_ratio=$(sed -n 's/.*"p99_ratio": \([0-9.]*\).*/\1/p' BENCH_serve.json)
rps_ratio=$(sed -n 's/.*"rps_ratio": \([0-9.]*\).*/\1/p' BENCH_serve.json)
if [ -z "$p99_ratio" ] || [ -z "$rps_ratio" ]; then
    echo "check.sh: serve ratios missing from BENCH_serve.json" >&2
    exit 1
fi
if ! awk "BEGIN { exit !($p99_ratio <= 1.25) }"; then
    echo "check.sh: serving p99 regressed: ${p99_ratio}x over recorded baseline (limit 1.25x)" >&2
    exit 1
fi
if ! awk "BEGIN { exit !($rps_ratio >= 0.80) }"; then
    echo "check.sh: serving throughput regressed: ${rps_ratio}x of recorded baseline (floor 0.80x)" >&2
    exit 1
fi
echo "serving benchmark vs baseline: p99 ${p99_ratio}x, throughput ${rps_ratio}x"

echo "check.sh: all green"
