package ktau_test

import (
	"encoding/json"
	"os"
	"testing"

	"ktau"
)

// writeBench validates and writes one BENCH_*.json payload. Validation uses
// the same strict parser the ktau-sweep bench gate later reads the file
// with — duplicate keys anywhere, and every key the gate thresholds, are
// checked here — so a renamed or doubled metric fails the benchmark that
// writes the file instead of a later check.sh run.
func writeBench(b *testing.B, path string, payload any) {
	b.Helper()
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	data = append(data, '\n')
	if err := ktau.CheckBenchPayload(path, data); err != nil {
		b.Fatalf("refusing to write %s: %v", path, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
}
