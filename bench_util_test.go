package ktau_test

import (
	"encoding/json"
	"os"
	"testing"

	"ktau"
)

// writeBench validates and writes one BENCH_*.json payload. Validation uses
// the same strict parser the ktau-sweep bench gate later reads the file
// with — duplicate keys anywhere, and every key the gate thresholds, are
// checked here — so a renamed or doubled metric fails the benchmark that
// writes the file instead of a later check.sh run.
func writeBench(b *testing.B, path string, payload any) {
	b.Helper()
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	data = append(data, '\n')
	if err := ktau.CheckBenchPayload(path, data); err != nil {
		b.Fatalf("refusing to write %s: %v", path, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
}

// parallelBenchDoc builds a BENCH_parallel.json payload in the same shape
// BenchmarkParallelChiba emits, with hooks to corrupt it per test case.
func parallelBenchDoc(mutate func(doc map[string]any, rows []map[string]any)) []byte {
	rows := []map[string]any{
		{"workers": 1, "gomaxprocs": 1, "wall_s": 8.0, "speedup": 1.0, "identical_results": true},
		{"workers": 2, "gomaxprocs": 2, "wall_s": 4.4, "speedup": 1.81, "identical_results": true},
		{"workers": 4, "gomaxprocs": 4, "wall_s": 2.5, "speedup": 3.2, "identical_results": true},
		{"workers": 8, "gomaxprocs": 8, "wall_s": 1.7, "speedup": 4.7, "identical_results": true},
	}
	doc := map[string]any{
		"benchmark":      "128-node 8-rack Chiba LU, partitioned-runner worker sweep vs serial",
		"ranks":          128,
		"nodes":          128,
		"racks":          8,
		"host_cpus":      8,
		"serial_wall_s":  8.0,
		"virtual_exec_s": 3.6,
	}
	if mutate != nil {
		mutate(doc, rows)
	}
	if _, drop := doc["_drop_rows"]; drop {
		delete(doc, "_drop_rows")
	} else {
		doc["rows"] = rows
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err)
	}
	return blob
}

// TestParallelBenchSchema pins the write-time contract of
// BENCH_parallel.json: the exact payload shape the benchmark emits is
// accepted, and every corruption a refactor could plausibly introduce —
// unknown or renamed fields, missing rows, a row whose results diverged
// from serial — is rejected before the file is written.
func TestParallelBenchSchema(t *testing.T) {
	if err := ktau.CheckBenchPayload("BENCH_parallel.json", parallelBenchDoc(nil)); err != nil {
		t.Fatalf("canonical payload rejected: %v", err)
	}

	reject := map[string]func(doc map[string]any, rows []map[string]any){
		"unknown top-level field": func(doc map[string]any, _ []map[string]any) {
			doc["parallel_wall_s"] = 4.4 // legacy flat-schema key
		},
		"unknown row field": func(_ map[string]any, rows []map[string]any) {
			rows[2]["wall_ms"] = 2500.0
		},
		"missing rows": func(doc map[string]any, _ []map[string]any) {
			doc["_drop_rows"] = true
		},
		"diverged row": func(_ map[string]any, rows []map[string]any) {
			rows[3]["identical_results"] = false
		},
		"duplicate workers": func(_ map[string]any, rows []map[string]any) {
			rows[1]["workers"] = 1
		},
		"no serial baseline": func(_ map[string]any, rows []map[string]any) {
			rows[0]["workers"] = 3
		},
		"flat topology": func(doc map[string]any, _ []map[string]any) {
			doc["racks"] = 1
		},
		"zero wall clock": func(_ map[string]any, rows []map[string]any) {
			rows[1]["wall_s"] = 0.0
		},
	}
	for name, mutate := range reject {
		if err := ktau.CheckBenchPayload("BENCH_parallel.json", parallelBenchDoc(mutate)); err == nil {
			t.Errorf("%s: payload accepted", name)
		}
	}

	// Duplicate JSON keys can't be built through a map; check the raw form.
	dup := []byte(`{"benchmark": "x", "host_cpus": 8, "host_cpus": 8}`)
	if err := ktau.CheckBenchPayload("BENCH_parallel.json", dup); err == nil {
		t.Error("duplicate key accepted")
	}
}

// TestCommittedParallelBenchParses keeps the committed BENCH_parallel.json
// loadable by the gate: if the benchmark's schema moves, the committed
// artifact must be regenerated in the same change.
func TestCommittedParallelBenchParses(t *testing.T) {
	blob, err := os.ReadFile("BENCH_parallel.json")
	if err != nil {
		t.Skipf("no committed BENCH_parallel.json: %v", err)
	}
	if err := ktau.CheckBenchPayload("BENCH_parallel.json", blob); err != nil {
		t.Fatalf("committed BENCH_parallel.json fails validation: %v", err)
	}
}
