// Integration tests exercising the public API end to end, the way a
// downstream user would: boot clusters, run workloads, read profiles
// through /proc/ktau, merge views, and check cross-module invariants.
package ktau_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ktau"
)

func publicCluster(t *testing.T, nodes int) *ktau.Cluster {
	t.Helper()
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("node", nodes),
		Kernel: ktau.DefaultKernelParams(),
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			Mapping: true, RetainExited: true,
		},
		Seed: 11,
	})
	t.Cleanup(c.Shutdown)
	return c
}

func TestPublicAPIEndToEnd(t *testing.T) {
	c := publicCluster(t, 2)
	node := c.Node(0)

	var prof ktau.TauProfile
	app := node.K.Spawn("app", func(u *ktau.UCtx) {
		tp := ktau.NewTau(u, ktau.DefaultTauOptions())
		tp.Timed("work", func() { u.Compute(5 * time.Millisecond) })
		tp.Timed("io", func() {
			u.Syscall("sys_write", func(kc *ktau.KCtx) { kc.Use(30 * time.Microsecond) })
		})
		prof = tp.Snapshot("app", 0)
	}, ktau.SpawnOpts{Kind: ktau.KindUser})

	if !c.RunUntilDone([]*ktau.Task{app}, time.Minute) {
		t.Fatal("app did not finish")
	}

	// libKtau round trip through /proc/ktau.
	h := ktau.OpenKtau(ktau.NewProcFS(node.K.Ktau()))
	snap, err := h.GetProfile(ktau.ScopeOther, app.PID())
	if err != nil {
		t.Fatal(err)
	}
	if snap.FindEvent("sys_write") == nil {
		t.Error("syscall event missing from profile read via procfs")
	}

	// Merged view.
	merged := ktau.Merge(prof, snap)
	if merged.Find("work", false) == nil || merged.Find("sys_write", true) == nil {
		t.Error("merged profile incomplete")
	}

	// ASCII round trip and formatted output.
	var buf bytes.Buffer
	if err := ktau.WriteProfileASCII(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#KTAU-PROFILE") {
		t.Error("ascii header missing")
	}
	buf.Reset()
	ktau.FormatProfile(&buf, snap, node.K.Params().HZ)
	if !strings.Contains(buf.String(), "sys_write") {
		t.Error("formatted profile missing events")
	}
}

func TestPublicAPIMPIWorkload(t *testing.T) {
	c := publicCluster(t, 4)
	specs := make([]ktau.RankSpec, 4)
	for i := range specs {
		specs[i] = ktau.RankSpec{Stack: c.Node(i).Stack}
	}
	w := ktau.NewWorld(specs, ktau.DefaultTauOptions())
	cfg := ktau.DefaultLUConfig(4)
	cfg.Iters = 3
	tasks := w.Launch("lu", ktau.LU(cfg))
	if !c.RunUntilDone(tasks, 5*time.Minute) {
		t.Fatal("LU deadlocked")
	}
	for i := 0; i < 4; i++ {
		if w.Rank(i).Profile.Find("rhs") == nil {
			t.Errorf("rank %d missing rhs in user profile", i)
		}
	}
	// Cross-module invariant: total bytes sent == received across the job.
	var sent, rcvd uint64
	for i := 0; i < 4; i++ {
		sent += w.Rank(i).Stats.BytesSent
		rcvd += w.Rank(i).Stats.BytesRcvd
	}
	if sent != rcvd || sent == 0 {
		t.Errorf("byte conservation violated: %d vs %d", sent, rcvd)
	}
}

func TestPublicAPIKTAUDAndRunKtau(t *testing.T) {
	c := publicCluster(t, 1)
	k := c.Node(0).K
	fs := ktau.NewProcFS(k.Ktau())

	var wrapped ktau.Snapshot
	app := k.Spawn("timed", ktau.RunKtau(fs, func(u *ktau.UCtx) {
		u.Compute(2 * time.Millisecond)
		u.Syscall("sys_open", nil)
	}, &wrapped), ktau.SpawnOpts{Kind: ktau.KindUser})

	rounds := 0
	daemon := k.Spawn("ktaud", ktau.KTAUD(fs, ktau.KTAUDConfig{
		Interval: time.Millisecond,
		Rounds:   3,
		OnSnapshot: func(r int, snaps []ktau.Snapshot) {
			rounds++
			if len(snaps) == 0 {
				t.Error("ktaud round collected nothing")
			}
		},
	}), ktau.SpawnOpts{Kind: ktau.KindDaemon})

	if !c.RunUntilDone([]*ktau.Task{app, daemon}, time.Minute) {
		t.Fatal("clients did not finish")
	}
	if rounds != 3 {
		t.Errorf("ktaud rounds = %d", rounds)
	}
	if wrapped.PID != app.PID() || wrapped.FindEvent("sys_open") == nil {
		t.Error("runKtau result incomplete")
	}
}

func TestPublicAPIGroupControl(t *testing.T) {
	c := publicCluster(t, 1)
	k := c.Node(0).K
	h := ktau.OpenKtau(ktau.NewProcFS(k.Ktau()))

	if err := h.DisableGroups(ktau.GroupTCP | ktau.GroupSyscall); err != nil {
		t.Fatal(err)
	}
	app := k.Spawn("app", func(u *ktau.UCtx) {
		u.Syscall("sys_write", nil)
		u.Compute(time.Millisecond)
	}, ktau.SpawnOpts{Kind: ktau.KindUser})
	if !c.RunUntilDone([]*ktau.Task{app}, time.Minute) {
		t.Fatal("app stuck")
	}
	snap, _ := h.GetProfile(ktau.ScopeOther, app.PID())
	if snap.FindEvent("sys_write") != nil {
		t.Error("disabled syscall group still recorded")
	}
	if snap.FindEvent("schedule_vol") == nil && snap.FindEvent("do_IRQ[timer]") == nil {
		t.Error("enabled groups stopped recording too")
	}
}

func TestPublicAPIDeterminism(t *testing.T) {
	run := func() ktau.Time {
		c := ktau.NewCluster(ktau.ClusterConfig{
			Nodes:  ktau.UniformNodes("n", 2),
			Kernel: ktau.DefaultKernelParams(),
			Ktau:   ktau.MeasurementOptions{Compiled: ktau.GroupAll, Boot: ktau.GroupAll},
			Seed:   1234,
		})
		defer c.Shutdown()
		ab, ba := ktau.Connect(c.Node(0).Stack, c.Node(1).Stack)
		t1 := c.Node(0).K.Spawn("a", func(u *ktau.UCtx) {
			for i := 0; i < 5; i++ {
				u.Compute(time.Millisecond)
				ab.Send(u, 10_000)
				ab.Recv(u, 100)
			}
		}, ktau.SpawnOpts{})
		t2 := c.Node(1).K.Spawn("b", func(u *ktau.UCtx) {
			for i := 0; i < 5; i++ {
				ba.Recv(u, 10_000)
				ba.Send(u, 100)
			}
		}, ktau.SpawnOpts{})
		c.RunUntilDone([]*ktau.Task{t1, t2}, time.Minute)
		return c.Now()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("public API runs nondeterministic: %v vs %v", a, b)
	}
}

func TestPublicAPIAnalysisHelpers(t *testing.T) {
	pts := ktau.CDF([]float64{3, 1, 2})
	if len(pts) != 3 || pts[0].X != 1 {
		t.Error("CDF wrong")
	}
	if ktau.Quantile([]float64{1, 2, 3, 4}, 0.5) != 2.5 {
		t.Error("Quantile wrong")
	}
	h := ktau.NewHistogram([]float64{1, 2, 3, 4}, 2)
	if len(h.Counts) != 2 {
		t.Error("Histogram wrong")
	}
	g := ktau.MakeGrid(12)
	if g.PX*g.PY != 12 {
		t.Error("grid wrong")
	}
	if gr, err := ktau.ParseGroup("SCHED|TCP"); err != nil || gr != ktau.GroupSched|ktau.GroupTCP {
		t.Error("ParseGroup wrong")
	}
}

func TestPublicAPITimelineMerge(t *testing.T) {
	c := publicCluster(t, 1)
	// Tracing needs capacity configured at boot; use a dedicated cluster.
	c2 := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("t", 1),
		Kernel: ktau.DefaultKernelParams(),
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll, Boot: ktau.GroupAll, TraceCapacity: 1024,
		},
		Seed: 5,
	})
	defer c2.Shutdown()
	_ = c
	k := c2.Node(0).K
	var user []struct{}
	_ = user
	var tp *ktau.Tau
	app := k.Spawn("app", func(u *ktau.UCtx) {
		opts := ktau.DefaultTauOptions()
		opts.TraceCapacity = 1024
		tp = ktau.NewTau(u, opts)
		tp.Timed("region", func() {
			u.Syscall("sys_write", func(kc *ktau.KCtx) { kc.Use(10 * time.Microsecond) })
		})
	}, ktau.SpawnOpts{Kind: ktau.KindUser})
	if !c2.RunUntilDone([]*ktau.Task{app}, time.Minute) {
		t.Fatal("app stuck")
	}
	tl := ktau.MergeTimeline(tp.Trace(), app.KD().Trace().Snapshot(), k.Ktau().Reg.Name)
	win := ktau.TimelineWindow(tl, "region", 0)
	if win == nil {
		t.Fatal("no region window")
	}
	var sawKernel bool
	for _, e := range win {
		if e.Kernel && e.Name == "sys_write" {
			sawKernel = true
		}
	}
	if !sawKernel {
		t.Error("kernel syscall not inside the user region window")
	}
	var buf bytes.Buffer
	ktau.RenderTimeline(&buf, win, k.Params().HZ)
	if !strings.Contains(buf.String(), "region") {
		t.Error("render incomplete")
	}
}

func TestPublicAPILMBench(t *testing.T) {
	c := publicCluster(t, 2)
	if d := ktau.LMBenchNullSyscall(c.Node(0).K, 200); d <= 0 || d > 10*time.Microsecond {
		t.Errorf("null syscall = %v", d)
	}
	if d := ktau.LMBenchCtxSwitch(c.Node(0).K, 50); d <= 0 || d > 100*time.Microsecond {
		t.Errorf("ctx switch = %v", d)
	}
	lat, bw := ktau.LMBenchTCP(c, c.Node(0).Stack, c.Node(1).Stack, 10, 500_000)
	if lat <= 0 || bw <= 0 {
		t.Errorf("tcp lat=%v bw=%v", lat, bw)
	}
}

// TestAdaptiveMeasurementControl demonstrates the paper's §6 vision of
// dynamically adaptive kernel measurement: a controller daemon watches
// KTAUD's harvested profiles and narrows the enabled instrumentation groups
// at runtime once it has seen enough, without reboot or recompilation.
func TestAdaptiveMeasurementControl(t *testing.T) {
	c := publicCluster(t, 1)
	k := c.Node(0).K
	fs := ktau.NewProcFS(k.Ktau())
	h := ktau.OpenKtau(fs)

	app := k.Spawn("app", func(u *ktau.UCtx) {
		for i := 0; i < 200; i++ {
			u.Compute(500 * time.Microsecond)
			u.Syscall("sys_write", nil)
		}
	}, ktau.SpawnOpts{Kind: ktau.KindUser})

	var narrowedAt int
	daemon := k.Spawn("adaptd", ktau.KTAUD(fs, ktau.KTAUDConfig{
		Interval: 5 * time.Millisecond,
		Rounds:   10,
		OnSnapshot: func(round int, snaps []ktau.Snapshot) {
			if narrowedAt > 0 {
				return
			}
			// Once syscall activity is confirmed, drop everything except
			// the scheduler subsystem to minimise perturbation.
			for _, s := range snaps {
				if ev := s.FindEvent("sys_write"); ev != nil && ev.Calls > 20 {
					if err := h.DisableGroups(ktau.GroupAll &^ ktau.GroupSched); err != nil {
						t.Error(err)
					}
					narrowedAt = round + 1
					return
				}
			}
		},
	}), ktau.SpawnOpts{Kind: ktau.KindDaemon})

	if !c.RunUntilDone([]*ktau.Task{app, daemon}, time.Minute) {
		t.Fatal("run did not finish")
	}
	if narrowedAt == 0 {
		t.Fatal("controller never narrowed instrumentation")
	}
	// After narrowing, syscall events stopped accumulating while scheduler
	// events continued.
	snap, err := h.GetProfile(ktau.ScopeOther, app.PID())
	if err != nil {
		t.Fatal(err)
	}
	sw := snap.FindEvent("sys_write")
	if sw == nil {
		t.Fatal("sys_write vanished entirely")
	}
	if sw.Calls >= 200 {
		t.Errorf("sys_write calls = %d; narrowing had no effect", sw.Calls)
	}
	if tick := snap.FindEvent("scheduler_tick"); tick == nil || tick.Calls == 0 {
		t.Error("scheduler instrumentation should still be live")
	}
	if !k.Ktau().Enabled(ktau.GroupSched) || k.Ktau().Enabled(ktau.GroupSyscall) {
		t.Error("runtime masks not in the narrowed state")
	}
}

// TestCountersThroughPublicAPI checks the future-work performance-counter
// integration end to end: per-event counter columns flow from the kernel's
// virtual PMCs through /proc/ktau and libKtau to the client.
func TestCountersThroughPublicAPI(t *testing.T) {
	c := publicCluster(t, 1)
	k := c.Node(0).K
	app := k.Spawn("app", func(u *ktau.UCtx) {
		u.Syscall("sys_write", func(kc *ktau.KCtx) { kc.Use(5 * time.Millisecond) })
	}, ktau.SpawnOpts{Kind: ktau.KindUser})
	if !c.RunUntilDone([]*ktau.Task{app}, time.Minute) {
		t.Fatal("app stuck")
	}
	h := ktau.OpenKtau(ktau.NewProcFS(k.Ktau()))
	snap, err := h.GetProfile(ktau.ScopeOther, app.PID())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.CounterNames) == 0 || snap.CounterNames[0] != "PAPI_TOT_INS" {
		t.Fatalf("counter names = %v", snap.CounterNames)
	}
	ev := snap.FindEvent("sys_write")
	if ev == nil || ev.Ctr[ktau.CtrInstructions] <= 0 {
		t.Errorf("no instruction counts on sys_write: %+v", ev)
	}
	var buf bytes.Buffer
	ktau.FormatProfile(&buf, snap, k.Params().HZ)
	if !strings.Contains(buf.String(), "PAPI_TOT_INS") {
		t.Error("formatted profile missing counter column")
	}
}
