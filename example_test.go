package ktau_test

import (
	"fmt"
	"time"

	"ktau"
)

// ExampleNewCluster boots a node, runs a program, and reads its kernel
// profile through libKtau — the minimal KTAU workflow.
func ExampleNewCluster() {
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("node", 1),
		Kernel: ktau.DefaultKernelParams(),
		Ktau: ktau.MeasurementOptions{Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			RetainExited: true},
		Seed: 42,
	})
	defer c.Shutdown()

	task := c.Node(0).K.Spawn("app", func(u *ktau.UCtx) {
		for i := 0; i < 3; i++ {
			u.Compute(time.Millisecond)
			u.Syscall("sys_getpid", nil)
		}
	}, ktau.SpawnOpts{Kind: ktau.KindUser})
	c.RunUntilDone([]*ktau.Task{task}, time.Minute)

	h := ktau.OpenKtau(ktau.NewProcFS(c.Node(0).K.Ktau()))
	snap, _ := h.GetProfile(ktau.ScopeOther, task.PID())
	ev := snap.FindEvent("sys_getpid")
	fmt.Printf("sys_getpid calls: %d\n", ev.Calls)
	// Output:
	// sys_getpid calls: 3
}

// ExampleMerge shows the integrated user/kernel profile: the user-level
// view of a routine is corrected by the kernel time that occurred inside it.
func ExampleMerge() {
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("node", 1),
		Kernel: ktau.DefaultKernelParams(),
		Ktau: ktau.MeasurementOptions{Compiled: ktau.GroupAll, Boot: ktau.GroupAll,
			Mapping: true, RetainExited: true},
		Seed: 7,
	})
	defer c.Shutdown()

	var prof ktau.TauProfile
	task := c.Node(0).K.Spawn("app", func(u *ktau.UCtx) {
		tp := ktau.NewTau(u, ktau.DefaultTauOptions())
		tp.Timed("io_routine", func() {
			u.Syscall("sys_write", func(kc *ktau.KCtx) {
				kc.Use(10 * time.Millisecond) // all the routine's time is kernel time
			})
		})
		prof = tp.Snapshot("app", 0)
	}, ktau.SpawnOpts{Kind: ktau.KindUser})
	c.RunUntilDone([]*ktau.Task{task}, time.Minute)

	kern, _ := ktau.OpenKtau(ktau.NewProcFS(c.Node(0).K.Ktau())).
		GetProfile(ktau.ScopeOther, task.PID())
	merged := ktau.Merge(prof, kern)
	e := merged.Find("io_routine", false)
	fmt.Printf("kernel time inside io_routine dominates: %v\n",
		e.KernelWithin > 9*e.Excl)
	// Output:
	// kernel time inside io_routine dominates: true
}

// ExampleMeasurementOptions demonstrates the three-level instrumentation
// control of paper §4.1: compiled-in, boot-enabled, runtime-toggled.
func ExampleMeasurementOptions() {
	c := ktau.NewCluster(ktau.ClusterConfig{
		Nodes:  ktau.UniformNodes("node", 1),
		Kernel: ktau.DefaultKernelParams(),
		Ktau: ktau.MeasurementOptions{
			Compiled: ktau.GroupAll,                  // make menuconfig: everything in
			Boot:     ktau.GroupAll &^ ktau.GroupTCP, // boot with TCP off
		},
		Seed: 1,
	})
	defer c.Shutdown()
	m := c.Node(0).K.Ktau()
	fmt.Println("TCP enabled at boot:", m.Enabled(ktau.GroupTCP))
	m.EnableRuntime(ktau.GroupTCP) // has no effect: boot mask gates it
	fmt.Println("TCP after runtime enable (boot-gated):", m.Enabled(ktau.GroupTCP))
	fmt.Println("SCHED enabled:", m.Enabled(ktau.GroupSched))
	m.DisableRuntime(ktau.GroupSched)
	fmt.Println("SCHED after runtime disable:", m.Enabled(ktau.GroupSched))
	// Output:
	// TCP enabled at boot: false
	// TCP after runtime enable (boot-gated): false
	// SCHED enabled: true
	// SCHED after runtime disable: false
}
